// Package core is the facade tying the substrates together: load a Datalog
// program, analyze its linear recursion with the paper's machinery, choose
// an evaluation plan and answer queries.  The root package linrec re-exports
// this API for library users.
//
// The extensional database lives behind an atomically-swapped immutable
// Snapshot: queries pin the snapshot current when they start and evaluate
// entirely against it, while writers publish new snapshots copy-on-write
// (AddFacts), so online fact updates never tear an in-flight query.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"linrec/internal/ast"
	"linrec/internal/eval"
	"linrec/internal/parser"
	"linrec/internal/planner"
	"linrec/internal/rel"
	"linrec/internal/separable"
)

// ErrInternal wraps an evaluation panic recovered into an error: the
// engine hit an invariant violation (e.g. a relation whose arity
// disagrees with the program) that load- and update-time validation
// should have made impossible.  Callers can branch on it with errors.Is
// to report such failures as server faults rather than bad requests.
var ErrInternal = errors.New("internal evaluation error")

// Options configure a System's evaluation.
type Options struct {
	// Workers sizes the closure worker pool: every semi-naive round shards
	// its delta across this many goroutines.  0 or 1 evaluates
	// sequentially; negative selects runtime.GOMAXPROCS(0).
	Workers int
	// Strategy optionally overrides the analysis-driven plan choice.
	Strategy planner.Strategy
	// ResultCacheRows caps the goal-level result cache by total cached
	// answer rows.  0 selects DefaultResultCacheRows; negative disables
	// the cache.  Only the value passed at System construction matters —
	// the cache belongs to the System, not to individual queries.
	ResultCacheRows int
	// Persist, when set, makes snapshots durable: NewSystem boots the
	// last published snapshot from it (skipping the program's fact load
	// when one exists), and every snapshot swap publishes through it
	// before becoming visible.  A publish failure aborts the swap, so
	// the durable state never lags the served state.  Only the value
	// passed at System construction matters.
	Persist Persister
}

// Persister is the persistence seam between the engine and a storage
// backend (see internal/segment for the on-disk implementation).  Boot
// restores the last published snapshot: it replays the persisted symbol
// table into syms — so persisted column values stay meaningful — and
// returns the database and its snapshot version; ok is false on a fresh
// (empty) backend.  Publish makes a snapshot durable before it is
// served; it runs under the system's write lock, so calls are
// serialized, and may retain db and read it lazily afterwards — every
// store in a published snapshot is immutable forever.
type Persister interface {
	Boot(syms *rel.Symtab) (db rel.DB, version uint64, ok bool, err error)
	Publish(version uint64, db rel.DB, syms *rel.Symtab) error
}

// DeltaPersister is the optional partial-reuse extension of Persister:
// PublishDelta has Publish's durability contract, but a backend that
// implements it may persist a predicate whose store is one overlay
// layer (rel.Layered) over its previously published store as a delta
// chained onto the existing base, instead of rewriting the relation.
// The backend may also replace entries of db in place with equivalent
// compacted stores (same tuples, flat representation) before the
// snapshot becomes visible — which is how long chains fold back into
// single segments.  Fact swaps prefer this path when the backend
// offers it.
type DeltaPersister interface {
	Persister
	PublishDelta(version uint64, db rel.DB, syms *rel.Symtab) error
}

// persistSwap publishes a fact-update snapshot through the configured
// backend, routing through the delta path when the backend supports
// it.  It must run before the snapshot is stored (durability before
// visibility) and before cache maintenance binds to next.DB, since a
// delta backend may swap compacted stores into it.
func (s *System) persistSwap(next *Snapshot) error {
	if s.Opts.Persist == nil {
		return nil
	}
	if dp, ok := s.Opts.Persist.(DeltaPersister); ok {
		return dp.PublishDelta(next.Version, next.DB, s.Engine.Syms)
	}
	return s.Opts.Persist.Publish(next.Version, next.DB, s.Engine.Syms)
}

func (o Options) normalize() Options {
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// planOpts maps the options onto the planner's.
func (o Options) planOpts() planner.Options {
	return planner.Options{Workers: o.Workers, Strategy: o.Strategy}
}

// Snapshot is an immutable version of the extensional database.  Once
// published it is never mutated: queries evaluate against whichever
// snapshot they pinned, and fact updates build a successor copy-on-write.
// Relations untouched by an update are shared between versions, so a swap
// costs one shallow map copy plus a clone of only the grown relations.
type Snapshot struct {
	DB      rel.DB
	Version uint64
}

// System holds a loaded program, its extensional database and the engine.
// After loading, a System is safe for concurrent use: Query, Run, Analyze
// and Report may be called from any number of goroutines, and AddFacts may
// swap in new fact snapshots concurrently with in-flight queries (writers
// are serialized internally).
type System struct {
	Prog   *ast.Program
	Engine *eval.Engine
	Opts   Options

	// snap is the current database snapshot; readers load it once per
	// query and never look again (snapshot isolation).
	snap atomic.Pointer[Snapshot]
	// factMu serializes snapshot writers (AddFacts).
	factMu sync.Mutex

	// idb is the set of rule-head predicates: evaluation derives them, it
	// never reads their db relation, so AddFacts rejects them (facts for
	// a derived predicate would be stored yet invisible to every query).
	idb map[string]bool
	// arity maps every predicate the program mentions (rule heads, rule
	// bodies, facts) to its declared arity.  AddFacts validates against it,
	// so a rule-referenced EDB predicate with no initial facts — absent
	// from every snapshot — still rejects wrong-arity facts up front
	// instead of surfacing the mismatch as a join panic at query time.
	arity map[string]int

	mu       sync.Mutex
	analyses map[string]*planner.Analysis

	// seeds caches, for the current snapshot version, the materialized
	// exit-rule seed per predicate (adorn == "") and the magic set per
	// (predicate, adornment, bound tuple) — the goal-binding dimension
	// the magic-seeded plans add.  Cached relations are immutable once
	// built (plans clone or only read them; their lazy indexes build
	// concurrency-safely), so one build serves every concurrent query on
	// that snapshot — without it, a busy server re-materializes the
	// (possibly huge) exit-rule union, or re-walks the magic frontier,
	// per request.  Single-flight: concurrent first queries share one
	// build.
	seedMu      sync.Mutex
	seedVersion uint64
	seeds       map[seedKey]*seedFuture

	// results is the goal-level result cache (see resultcache.go):
	// completed QueryResults keyed by normalized goal and plan kind,
	// valid at one snapshot version at a time, LRU-bounded by total
	// cached rows.  Where the seed cache saves re-materializing
	// evaluation inputs, this one skips evaluation entirely for repeated
	// goals on an unchanged database; snapshot swaps try to carry its
	// entries to the new version (see maintain.go) before purging.
	results *resultCache

	// deltas caches the occurrence-restricted delta operators the
	// maintenance paths derive from the analysis operators (maintain.go).
	deltas deltaOps

	// Lifetime seed/magic cache counters (SeedCacheStats): hits and
	// misses per dimension (a capacity or superseded-snapshot bypass
	// counts as a miss — the query evaluated the artifact itself), plus
	// how many entries swap maintenance carried forward versus dropped.
	seedHits, seedMisses   atomic.Int64
	magicHits, magicMisses atomic.Int64
	seedsUpgraded          atomic.Int64
	seedsPurged            atomic.Int64
}

// seedKey addresses one cached evaluation artifact of a snapshot: the
// exit-rule seed of a predicate (adorn == ""), or the magic set of a
// bound goal on that predicate, keyed by its adornment and bound tuple
// (see magicAdornKey).
type seedKey struct {
	pred  string
	adorn string
}

// magicAdornKey encodes a magic set's (adornment, bound tuple) pair as a
// seedKey component: "col=val" pairs over the bound columns, ascending.
// Values are interned rel.Values, so the encoding is exact and two
// distinct bound tuples never collide.
func magicAdornKey(cols []int, vals rel.Tuple) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d=%d", c, vals[i])
	}
	return b.String()
}

type seedFuture struct {
	once sync.Once
	done chan struct{}
	q    *rel.Relation
	// stats are the frontier statistics of a magic-set build; queries
	// reusing the cached set fold them in so cache hits and misses
	// report identical statistics.
	stats eval.Stats
	err   error
}

// magicCacheCap bounds the number of cached entries per snapshot.
// Magic sets are keyed by the query's bound tuple, and a remote client
// can sweep arbitrarily many distinct constants on a snapshot that
// never swaps — without a cap that sweep would grow the cache (and its
// detached builds) without bound.  Queries past the cap still work;
// they just compute their magic set inline, under their own context.
const magicCacheCap = 1024

// cachedFuture returns the single-flight future for key on snap, or nil
// when the artifact should be computed fresh instead: the snapshot is
// superseded (no point repopulating the cache), or the cache is at
// capacity and the key is not already present.  created reports that
// this call inserted the future (the caller is about to run the build —
// a cache miss); false with a non-nil future is a hit on an existing
// (possibly still in-flight) entry.
func (s *System) cachedFuture(snap *Snapshot, key seedKey) (f *seedFuture, created bool) {
	s.seedMu.Lock()
	defer s.seedMu.Unlock()
	if snap.Version != s.seedVersion {
		if snap.Version < s.seedVersion {
			return nil, false
		}
		s.seedVersion = snap.Version
		s.seeds = map[seedKey]*seedFuture{}
	}
	f, ok := s.seeds[key]
	if !ok {
		// Exit-rule seeds (adorn == "") are bounded by the program's
		// predicate count and always cached; only the bound-tuple-keyed
		// magic dimension is capped.
		if key.adorn != "" && len(s.seeds) >= magicCacheCap {
			return nil, false
		}
		f = &seedFuture{done: make(chan struct{})}
		s.seeds[key] = f
		created = true
	}
	return f, created
}

// build runs fn exactly once on a detached goroutine (the artifact is
// bounded work every later query on this snapshot reuses), recovering a
// panic — an engine invariant violation — into the future's error, which
// every waiter then observes.  Waiters honor ctx: a query whose deadline
// fires during the build returns immediately instead of pinning its
// worker grant until the build completes.
func (f *seedFuture) build(ctx context.Context, what string, fn func() (*rel.Relation, eval.Stats, error)) (*rel.Relation, eval.Stats, error) {
	f.once.Do(func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					// Keep the stack: it is the only pointer to the
					// invariant violation once the panic is flattened
					// into an error.
					f.q, f.err = nil, fmt.Errorf("core: %w: %s: %v\n%s", ErrInternal, what, r, debug.Stack())
				}
				close(f.done)
			}()
			f.q, f.stats, f.err = fn()
		}()
	})
	// A nil context (tolerated throughout the engine, see
	// eval.watchContext) waits unconditionally: a nil Done channel
	// blocks forever.
	var cancelled <-chan struct{}
	if ctx != nil {
		cancelled = ctx.Done()
	}
	select {
	case <-f.done:
		return f.q, f.stats, f.err
	case <-cancelled:
		return nil, eval.Stats{}, ctx.Err()
	}
}

// seedFor returns the evaluation seed for a on snap, cached per
// (predicate, snapshot version).
func (s *System) seedFor(ctx context.Context, a *planner.Analysis, snap *Snapshot) (*rel.Relation, error) {
	tr := eval.TracerFrom(ctx)
	f, created := s.cachedFuture(snap, seedKey{pred: a.Pred})
	if f == nil {
		s.seedMisses.Add(1)
		tr.Cache("seed", "bypass", a.Pred, 0)
		return a.Seed(s.Engine, snap.DB)
	}
	if created {
		s.seedMisses.Add(1)
	} else {
		s.seedHits.Add(1)
	}
	start := time.Now()
	q, _, err := f.build(ctx, fmt.Sprintf("seed for %q", a.Pred), func() (*rel.Relation, eval.Stats, error) {
		q, err := a.Seed(s.Engine, snap.DB)
		return q, eval.Stats{}, err
	})
	if created {
		tr.Cache("seed", "miss", a.Pred, time.Since(start))
	} else {
		tr.Cache("seed", "hit", a.Pred, time.Since(start))
	}
	return q, err
}

// magicFor returns the magic set for a bound goal on snap — the
// goal-binding dimension of the seed cache, keyed (predicate,
// adornment, bound tuple, snapshot version) — along with the frontier
// statistics recorded when the set was built, so every query over the
// cached set reports the same statistics as the one that paid for it.
// vals carries the bound values in spec.Cols order.
func (s *System) magicFor(ctx context.Context, a *planner.Analysis, snap *Snapshot, spec eval.MagicSpec, vals rel.Tuple) (*rel.Relation, eval.Stats, error) {
	tr := eval.TracerFrom(ctx)
	key := a.Pred + "[" + magicAdornKey(spec.Cols, vals) + "]"
	f, created := s.cachedFuture(snap, seedKey{pred: a.Pred, adorn: magicAdornKey(spec.Cols, vals)})
	if f == nil {
		// Uncached (superseded snapshot, or cache at capacity): compute
		// inline under the request's own context, so the query's
		// deadline and client disconnect still cancel the frontier.
		s.magicMisses.Add(1)
		tr.Cache("magic", "bypass", key, 0)
		var stats eval.Stats
		set, err := s.Engine.MagicSetCtx(ctx, snap.DB, spec, vals, &stats)
		return set, stats, err
	}
	if created {
		s.magicMisses.Add(1)
	} else {
		s.magicHits.Add(1)
	}
	start := time.Now()
	set, stats, err := f.build(ctx, fmt.Sprintf("magic set for %q[%s]", a.Pred, magicAdornKey(spec.Cols, vals)), func() (*rel.Relation, eval.Stats, error) {
		// The cached build is detached from any single request on
		// purpose: the set is bounded frontier work every later query
		// with this binding reuses, so it runs under no request
		// deadline (waiters still honor their own ctx).  That detachment
		// is also why frontier phases of cached builds never land on a
		// query's trace — the cache event recorded here is the query's
		// view of the work.
		var stats eval.Stats
		set, err := s.Engine.MagicSetCtx(context.Background(), snap.DB, spec, vals, &stats)
		return set, stats, err
	})
	if created {
		tr.Cache("magic", "miss", key, time.Since(start))
	} else {
		tr.Cache("magic", "hit", key, time.Since(start))
	}
	return set, stats, err
}

// Load parses a Datalog program and loads its facts.
func Load(src string) (*System, error) {
	return LoadOptions(src, Options{})
}

// LoadOptions is Load with evaluation options.
func LoadOptions(src string, opts Options) (*System, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromProgramOptions(prog, opts)
}

// FromProgram wraps an already-parsed program.
func FromProgram(prog *ast.Program) (*System, error) {
	return FromProgramOptions(prog, Options{})
}

// FromProgramOptions is FromProgram with evaluation options.
func FromProgramOptions(prog *ast.Program, opts Options) (*System, error) {
	return NewSystem(prog, opts)
}

// NewSystem builds a System from a parsed program — the canonical
// constructor behind Load, LoadOptions and FromProgram.  Without
// persistence it loads the program's facts as snapshot version 1.  With
// Options.Persist set, it first asks the persister for a previously
// published snapshot: when one exists, the engine boots from it —
// symbol table restored, database served as-is at its persisted version,
// the program's fact list skipped (those facts were part of whatever
// history produced the persisted snapshot) and no closure recomputed.
// On a fresh backend it loads the program's facts and publishes them as
// the first durable snapshot.
func NewSystem(prog *ast.Program, opts Options) (*System, error) {
	s := &System{
		Prog:     prog,
		Engine:   eval.NewEngine(nil),
		Opts:     opts.normalize(),
		idb:      map[string]bool{},
		arity:    map[string]int{},
		analyses: map[string]*planner.Analysis{},
		results:  newResultCache(opts.ResultCacheRows),
	}
	for _, r := range prog.Rules {
		s.idb[r.Head.Pred] = true
	}
	// Fix every predicate's arity before anything evaluates: a program
	// using one predicate at two arities would otherwise load fine and
	// only blow up as a join panic mid-query.
	record := func(a ast.Atom) error {
		if want, ok := s.arity[a.Pred]; ok && want != a.Arity() {
			return fmt.Errorf("core: predicate %q used with arity %d and %d", a.Pred, want, a.Arity())
		}
		s.arity[a.Pred] = a.Arity()
		return nil
	}
	for _, r := range prog.Rules {
		if err := record(r.Head); err != nil {
			return nil, err
		}
		for _, a := range r.Body {
			if err := record(a); err != nil {
				return nil, err
			}
		}
	}
	for _, f := range prog.Facts {
		if err := record(f); err != nil {
			return nil, err
		}
	}
	var (
		db      rel.DB
		version uint64 = 1
		booted  bool
	)
	if s.Opts.Persist != nil {
		bdb, bver, ok, err := s.Opts.Persist.Boot(s.Engine.Syms)
		if err != nil {
			return nil, err
		}
		if ok {
			db, version, booted = bdb, bver, true
			// The recovered database must still fit the program: a
			// persisted relation whose arity disagrees with the rules, or
			// one shadowing a derived predicate, would resurface as a join
			// panic (or silently dead facts) at query time.
			for pred, st := range db {
				if s.idb[pred] {
					return nil, fmt.Errorf("core: recovered snapshot stores derived predicate %q", pred)
				}
				if want, ok := s.arity[pred]; ok && want != st.Arity() {
					return nil, fmt.Errorf("core: recovered predicate %q has arity %d, program declares %d",
						pred, st.Arity(), want)
				}
			}
		}
	}
	if !booted {
		db = rel.DB{}
		if err := s.Engine.LoadFacts(db, prog.Facts); err != nil {
			return nil, err
		}
	}
	// Pre-intern every rule constant: afterwards, a query constant that
	// Lookup cannot resolve provably occurs in no rule and no snapshot
	// relation, so the query path can answer "empty" without interning —
	// otherwise remote clients could grow the symbol table without bound
	// through fresh constants in read-only queries.  After a boot this is
	// idempotent for constants the persisted symtab already holds and
	// extends it for rules added since the snapshot was published.
	for _, r := range prog.Rules {
		internAtomConstants(s.Engine.Syms, r.Head)
		for _, a := range r.Body {
			internAtomConstants(s.Engine.Syms, a)
		}
	}
	if s.Opts.Persist != nil && !booted {
		if err := s.Opts.Persist.Publish(version, db, s.Engine.Syms); err != nil {
			return nil, fmt.Errorf("core: persisting initial snapshot: %w", err)
		}
	}
	s.snap.Store(&Snapshot{DB: db, Version: version})
	return s, nil
}

func internAtomConstants(syms *rel.Symtab, a ast.Atom) {
	for _, t := range a.Args {
		if !t.IsVar() {
			syms.Intern(t.Name)
		}
	}
}

// Snapshot returns the current database snapshot.  The returned snapshot
// stays valid (and immutable) forever; queries running against it are
// unaffected by later AddFacts swaps.
func (s *System) Snapshot() *Snapshot {
	return s.snap.Load()
}

// DB returns the current snapshot's database.  Mutating it is only safe
// before the System is shared across goroutines (e.g. bulk-loading
// generated facts right after FromProgram); once concurrent queries or
// AddFacts run, all updates must go through AddFacts.
func (s *System) DB() rel.DB {
	return s.snap.Load().DB
}

// AddFacts publishes a new database snapshot extended with the given
// ground facts, returning it along with the number of genuinely new
// tuples.  The swap is copy-on-write: only relations receiving new
// tuples are cloned, everything else is shared with the previous
// snapshot, and the new snapshot becomes visible to subsequent queries
// atomically.  In-flight queries keep the snapshot they pinned.  A batch
// of pure duplicates publishes nothing — the current snapshot comes back
// with added == 0, so warm caches survive idempotent re-pushes; on a
// real swap, cache maintenance (see maintain.go) carries what it can to
// the new version before the snapshot publishes.
func (s *System) AddFacts(facts []ast.Atom) (*Snapshot, int, error) {
	snap, added, _, err := s.AddFactsMaint(facts)
	return snap, added, err
}

// AddFactsMaint is AddFacts reporting what the swap's cache maintenance
// did: how many cached results and seeds were upgraded to the new
// version versus purged.
func (s *System) AddFactsMaint(facts []ast.Atom) (*Snapshot, int, Maintenance, error) {
	return s.AddFactsMaintCtx(context.Background(), facts)
}

// AddFactsMaintCtx is AddFactsMaint under a context.  The context is an
// observability carrier first: an eval.Tracer on it records every cache
// upgrade/purge decision and any resume phases the maintenance runs.
// Cancellation does not abort the swap itself — validation and the
// copy-on-write publish always complete — but a fired context degrades
// in-progress result upgrades to purges (the entry rebuilds on next
// query).
func (s *System) AddFactsMaintCtx(ctx context.Context, facts []ast.Atom) (*Snapshot, int, Maintenance, error) {
	var m Maintenance
	if len(facts) == 0 {
		return s.Snapshot(), 0, m, nil
	}
	s.factMu.Lock()
	defer s.factMu.Unlock()
	old := s.snap.Load()
	// Validate the entire batch — against the program, the current
	// snapshot's relations and the batch's own internal consistency —
	// before interning anything: rejection must leave the shared symbol
	// table byte-identical, or repeatedly rejected batches would grow it
	// without bound.
	batch := map[string]int{}
	for _, f := range facts {
		if !f.IsGround() {
			return nil, 0, m, fmt.Errorf("core: fact %v is not ground", f)
		}
		if s.idb[f.Pred] {
			return nil, 0, m, fmt.Errorf("core: %q is a derived (rule-head) predicate; facts for it would be invisible to queries", f.Pred)
		}
		// Check against the program's declared arity, not just an existing
		// relation: a rule-referenced predicate with no facts yet has no
		// relation in any snapshot, and a wrong-arity fact accepted here
		// would panic the join of the next query that touches it.
		if want, ok := s.arity[f.Pred]; ok && want != f.Arity() {
			return nil, 0, m, fmt.Errorf("core: fact %v has arity %d, predicate %q has arity %d",
				f, f.Arity(), f.Pred, want)
		}
		if r, ok := old.DB[f.Pred]; ok && r.Arity() != f.Arity() {
			return nil, 0, m, fmt.Errorf("core: fact %v has arity %d, relation %q has %d",
				f, f.Arity(), f.Pred, r.Arity())
		}
		if want, ok := batch[f.Pred]; ok && want != f.Arity() {
			return nil, 0, m, fmt.Errorf("core: batch uses predicate %q with arity %d and %d", f.Pred, want, f.Arity())
		}
		batch[f.Pred] = f.Arity()
	}
	db := make(rel.DB, len(old.DB)+1)
	for k, v := range old.DB {
		db[k] = v
	}
	counts := map[string]int{}
	for _, f := range facts {
		counts[f.Pred]++
	}
	// In-memory relations clone copy-on-write as always.  A disk-backed
	// store (lazy segment or an existing chain) is not cloned — the new
	// tuples collect in a small overlay relation that wraps the previous
	// store as one rel.Layered layer, which is both what keeps a
	// budgeted out-of-core write from inflating the whole segment and
	// the exact shape a delta-capable persister publishes as a chained
	// delta segment.
	added := 0
	addedBy := map[string]*rel.Relation{}
	cloned := map[string]*rel.Relation{}
	baseOf := map[string]rel.Store{}
	for _, f := range facts {
		r, ok := cloned[f.Pred]
		if !ok {
			if prev, exists := db[f.Pred]; exists {
				if pr, inMem := prev.(*rel.Relation); inMem {
					r = pr.Clone()
				} else {
					r = rel.NewRelation(f.Arity())
					baseOf[f.Pred] = prev
				}
			} else {
				r = rel.NewRelation(f.Arity())
			}
			r.Reserve(r.Len() + counts[f.Pred])
			cloned[f.Pred] = r
		}
		t := make(rel.Tuple, f.Arity())
		for i, a := range f.Args {
			t[i] = s.Engine.Syms.Intern(a.Name)
		}
		if base := baseOf[f.Pred]; base != nil && base.Has(t) {
			continue // already in the wrapped store: not a new tuple
		}
		if r.Insert(t) {
			added++
			d, ok := addedBy[f.Pred]
			if !ok {
				d = rel.NewRelation(f.Arity())
				addedBy[f.Pred] = d
			}
			d.Insert(t)
		}
	}
	for pred, r := range cloned {
		if base, wrapped := baseOf[pred]; wrapped {
			if r.Len() > 0 {
				db[pred] = rel.NewLayered(base, r, nil)
			}
			// r.Len() == 0: every fact was a duplicate; the store keeps
			// its identity so the publish reuses the segment untouched.
		} else {
			db[pred] = r
		}
	}
	if added == 0 {
		return old, 0, m, nil
	}
	next := &Snapshot{DB: db, Version: old.Version + 1}
	// Durability before visibility: if the snapshot cannot be persisted,
	// the swap is aborted and queries keep serving the old version, so a
	// restart can never regress behind what clients have observed.
	if err := s.persistSwap(next); err != nil {
		return nil, 0, m, fmt.Errorf("core: persisting snapshot %d: %w", next.Version, err)
	}
	m = s.maintainSwap(ctx, old, next, addedBy, true)
	s.snap.Store(next)
	return next, added, m, nil
}

// RemoveFacts publishes a new database snapshot with the given ground
// facts retracted, returning it along with the number of tuples actually
// removed.  Like AddFacts, the swap is copy-on-write — only relations
// losing tuples are rebuilt (tombstone-free, see rel.Relation.Without),
// everything else is shared with the previous snapshot — and in-flight
// queries keep their pinned pre-retraction snapshot.  Retraction is
// idempotent: facts that are not present (including facts naming
// constants the system has never seen) are skipped, and a batch that
// removes nothing publishes no snapshot, so warm caches survive; on a
// real swap, cache maintenance (delete-and-rederive, see maintain.go)
// carries what it can to the new version before the snapshot publishes.
// Facts must be ground, must not name derived (rule-head) predicates,
// and must match the program's declared arities — the same contract
// AddFacts enforces.
func (s *System) RemoveFacts(facts []ast.Atom) (*Snapshot, int, error) {
	snap, removed, _, err := s.RemoveFactsMaint(facts)
	return snap, removed, err
}

// RemoveFactsMaint is RemoveFacts reporting what the swap's cache
// maintenance did: how many cached results and seeds were upgraded to
// the new version versus purged.
func (s *System) RemoveFactsMaint(facts []ast.Atom) (*Snapshot, int, Maintenance, error) {
	return s.RemoveFactsMaintCtx(context.Background(), facts)
}

// RemoveFactsMaintCtx is RemoveFactsMaint under a context, with the same
// contract as AddFactsMaintCtx: the context carries observability (an
// eval.Tracer records the swap's cache decisions and resume phases), and
// cancellation degrades upgrades to purges without aborting the swap.
func (s *System) RemoveFactsMaintCtx(ctx context.Context, facts []ast.Atom) (*Snapshot, int, Maintenance, error) {
	var m Maintenance
	if len(facts) == 0 {
		return s.Snapshot(), 0, m, nil
	}
	for _, f := range facts {
		if !f.IsGround() {
			return nil, 0, m, fmt.Errorf("core: fact %v is not ground", f)
		}
		if s.idb[f.Pred] {
			return nil, 0, m, fmt.Errorf("core: %q is a derived (rule-head) predicate; retract the facts it is derived from instead", f.Pred)
		}
		if want, ok := s.arity[f.Pred]; ok && want != f.Arity() {
			return nil, 0, m, fmt.Errorf("core: fact %v has arity %d, predicate %q has arity %d",
				f, f.Arity(), f.Pred, want)
		}
	}
	s.factMu.Lock()
	defer s.factMu.Unlock()
	old := s.snap.Load()
	// Resolve retractions to tuples per predicate.  Lookup, never Intern:
	// a constant the symbol table has never seen occurs in no tuple, so
	// the retraction is a no-op rather than symbol-table growth.
	byPred := map[string][]rel.Tuple{}
	for _, f := range facts {
		r, ok := old.DB[f.Pred]
		if !ok {
			continue
		}
		if r.Arity() != f.Arity() {
			return nil, 0, m, fmt.Errorf("core: fact %v has arity %d, relation %q has %d",
				f, f.Arity(), f.Pred, r.Arity())
		}
		t := make(rel.Tuple, f.Arity())
		known := true
		for i, a := range f.Args {
			v, ok := s.Engine.Syms.Lookup(a.Name)
			if !ok {
				known = false
				break
			}
			t[i] = v
		}
		if known {
			byPred[f.Pred] = append(byPred[f.Pred], t)
		}
	}
	removed := 0
	rebuilt := map[string]rel.Store{}
	removedBy := map[string]*rel.Relation{}
	for pred, tuples := range byPred {
		r0 := old.DB[pred]
		r, n := rel.StoreWithout(r0, tuples)
		if n > 0 {
			rebuilt[pred] = r
			removed += n
			d := rel.NewRelation(r0.Arity())
			for _, t := range tuples {
				if r0.Has(t) {
					d.Insert(t)
				}
			}
			removedBy[pred] = d
		}
	}
	if removed == 0 {
		return old, 0, m, nil
	}
	db := make(rel.DB, len(old.DB))
	for k, v := range old.DB {
		db[k] = v
	}
	for pred, r := range rebuilt {
		db[pred] = r
	}
	next := &Snapshot{DB: db, Version: old.Version + 1}
	// Same durability-before-visibility contract as AddFactsMaintCtx.
	// Disk-backed stores surface retractions as one tombstone overlay
	// (see rel.Layered / Lazy.Without), which a delta-capable persister
	// publishes as a chained delta instead of rewriting the segment.
	if err := s.persistSwap(next); err != nil {
		return nil, 0, m, fmt.Errorf("core: persisting snapshot %d: %w", next.Version, err)
	}
	m = s.maintainSwap(ctx, old, next, removedBy, false)
	s.snap.Store(next)
	return next, removed, m, nil
}

// ValidateFacts checks a fact batch against the update contract shared
// by AddFacts and RemoveFacts — ground atoms only, no derived
// predicates, arities consistent with the program, the current
// snapshot's relations and each other — without publishing anything.
// The server front end validates both halves of a combined add+remove
// request with it before executing either, so a rejection is atomic:
// no half commits behind an error response.
func (s *System) ValidateFacts(facts []ast.Atom) error {
	snap := s.Snapshot()
	batch := map[string]int{}
	for _, f := range facts {
		if !f.IsGround() {
			return fmt.Errorf("core: fact %v is not ground", f)
		}
		if s.idb[f.Pred] {
			return fmt.Errorf("core: %q is a derived (rule-head) predicate", f.Pred)
		}
		if want, ok := s.arity[f.Pred]; ok && want != f.Arity() {
			return fmt.Errorf("core: fact %v has arity %d, predicate %q has arity %d",
				f, f.Arity(), f.Pred, want)
		}
		if r, ok := snap.DB[f.Pred]; ok && r.Arity() != f.Arity() {
			return fmt.Errorf("core: fact %v has arity %d, relation %q has %d",
				f, f.Arity(), f.Pred, r.Arity())
		}
		if want, ok := batch[f.Pred]; ok && want != f.Arity() {
			return fmt.Errorf("core: batch uses predicate %q with arity %d and %d", f.Pred, want, f.Arity())
		}
		batch[f.Pred] = f.Arity()
	}
	return nil
}

// ResultCacheStats reports the goal-level result cache's counters (the
// /v1/stats "result_cache" section).
func (s *System) ResultCacheStats() ResultCacheStats {
	return s.results.Stats()
}

// SeedCacheStats reports the seed/magic cache: current entries and rows
// plus lifetime hit/miss counters per dimension (a capacity or
// superseded-snapshot bypass counts as a miss) and the totals of entries
// carried across snapshot swaps versus dropped by them.
type SeedCacheStats struct {
	SeedEntries  int   `json:"seed_entries"`
	MagicEntries int   `json:"magic_entries"`
	Rows         int   `json:"rows"`
	SeedHits     int64 `json:"seed_hits"`
	SeedMisses   int64 `json:"seed_misses"`
	MagicHits    int64 `json:"magic_hits"`
	MagicMisses  int64 `json:"magic_misses"`
	Upgraded     int64 `json:"upgraded"`
	Purged       int64 `json:"purged"`
}

// SeedCacheStatsNow samples the seed/magic cache.  Row counts cover only
// completed builds — an in-flight future contributes its entry but no
// rows.
func (s *System) SeedCacheStatsNow() SeedCacheStats {
	st := SeedCacheStats{
		SeedHits:    s.seedHits.Load(),
		SeedMisses:  s.seedMisses.Load(),
		MagicHits:   s.magicHits.Load(),
		MagicMisses: s.magicMisses.Load(),
		Upgraded:    s.seedsUpgraded.Load(),
		Purged:      s.seedsPurged.Load(),
	}
	s.seedMu.Lock()
	defer s.seedMu.Unlock()
	for key, f := range s.seeds {
		if key.adorn == "" {
			st.SeedEntries++
		} else {
			st.MagicEntries++
		}
		select {
		case <-f.done:
			if f.q != nil {
				st.Rows += f.q.Len()
			}
		default:
		}
	}
	return st
}

// CachedAnswer probes the result cache for q on snap without planning,
// evaluating or joining an in-flight build — the admission-free fast
// path the server uses to answer a repeated goal without consuming a
// queue slot or worker grant.  ok reports a completed hit; any miss
// (including a build in flight) returns false and the caller proceeds
// through the normal QueryOn path.
func (s *System) CachedAnswer(snap *Snapshot, q ast.Atom, opts Options) (*QueryResult, bool) {
	opts = opts.normalize()
	a, sels, unknown, err := s.resolveQuery(q)
	if err != nil || unknown != "" {
		return nil, false
	}
	res := s.results.peek(resultKey{
		goal:     normalizeGoal(q),
		kind:     s.intendedKind(a, sels, opts),
		strategy: opts.Strategy,
		workers:  opts.Workers,
	}, snap.Version)
	if res == nil {
		return nil, false
	}
	hit := *res
	hit.Query = q
	hit.Cached = true
	return &hit, true
}

// Analyze runs (and caches) the paper's full analysis for one recursive
// predicate.
func (s *System) Analyze(pred string) (*planner.Analysis, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.analyses[pred]; ok {
		return a, nil
	}
	a, err := planner.Analyze(s.Prog, pred)
	if err != nil {
		return nil, err
	}
	s.analyses[pred] = a
	return a, nil
}

// QueryResult pairs an answer with the plan that produced it.
type QueryResult struct {
	Query  ast.Atom
	Answer *rel.Relation
	Stats  eval.Stats
	Plan   *planner.Plan
	// Version is the snapshot the query evaluated against.
	Version uint64
	// Cached reports that the result was served from the goal-level
	// result cache rather than evaluated for this call.  Everything else
	// — rows, stats, plan — is bit-for-bit the result of the query that
	// populated the entry.
	Cached bool

	// memo, when non-nil, shares the rendered sorted rows across every
	// holder of this result — cached results set it so repeated hits on
	// a large answer don't pay the render+sort per request.
	memo *rowsMemo
}

// rowsMemo renders an answer once per symbol table and shares the rows.
type rowsMemo struct {
	syms *rel.Symtab
	once sync.Once
	rows [][]string
}

// Rows renders the answer tuples as symbol strings in deterministic
// (lexicographically sorted) order, so output is stable across engines,
// worker counts and snapshot layouts.  The returned rows may be shared
// with other holders of a cached result and must not be mutated.
func (qr *QueryResult) Rows(s *System) [][]string {
	return qr.RowsSyms(s.Engine.Syms)
}

// RowsSyms is Rows against an explicit symbol table.  Like Rows, the
// returned slice must not be mutated.
func (qr *QueryResult) RowsSyms(syms *rel.Symtab) [][]string {
	if m := qr.memo; m != nil && m.syms == syms {
		m.once.Do(func() { m.rows = qr.renderRows(syms) })
		return m.rows
	}
	return qr.renderRows(syms)
}

// renderRows materializes and sorts the answer for one symbol table.
func (qr *QueryResult) renderRows(syms *rel.Symtab) [][]string {
	// One symbol-table snapshot for the whole answer: large results would
	// otherwise pay a lock round-trip per cell.
	names := syms.Names()
	name := func(v rel.Value) string {
		if int(v) >= 0 && int(v) < len(names) {
			return names[v]
		}
		return fmt.Sprintf("#%d", v)
	}
	out := make([][]string, 0, qr.Answer.Len())
	qr.Answer.Each(func(t rel.Tuple) {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = name(v)
		}
		out = append(out, row)
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// resolveQuery analyzes q and resolves its constant arguments into
// selections — the shared front half of Query and PlanFor.  unknown names
// a constant that occurs in no rule and no fact (the answer is provably
// empty); resolution uses Lookup, never Intern, so remote queries cannot
// grow the shared symbol table.
func (s *System) resolveQuery(q ast.Atom) (a *planner.Analysis, sels []separable.Selection, unknown string, err error) {
	a, err = s.Analyze(q.Pred)
	if err != nil {
		return nil, nil, "", err
	}
	if q.Arity() != a.Ops[0].Arity() {
		return nil, nil, "", fmt.Errorf("core: query %v has arity %d, predicate has %d", q, q.Arity(), a.Ops[0].Arity())
	}
	for i, t := range q.Args {
		if t.IsVar() {
			continue
		}
		v, ok := s.Engine.Syms.Lookup(t.Name)
		if !ok {
			return a, nil, t.Name, nil
		}
		sels = append(sels, separable.Selection{Col: i, Value: v})
	}
	return a, sels, "", nil
}

// nArySeparableCandidate reports whether Query would attempt the n-ary
// separable decomposition (Section 4.1) — strictly sequential — for this
// analysis/selection shape.  Assignment legality is only decided at
// execution, so this can say true for a query that falls back to another
// plan; PlanFor errs toward the sequential grant in that case.
func nArySeparableCandidate(a *planner.Analysis, sels []separable.Selection) bool {
	return len(sels) >= 2 && len(a.Ops) >= 2 && a.AllCommute()
}

// PlanFor returns the plan Query would select for q under opts, without
// executing anything.  The server front end uses it to size per-query
// worker grants: separable and bounded plans evaluate sequentially, so
// granting them a multi-worker budget slice would only starve other
// queries.  The result is for inspection, not execution — the n-ary and
// unknown-constant cases return stubs that the Execute entry points
// reject with an error rather than run.
func (s *System) PlanFor(q ast.Atom, opts Options) (*planner.Plan, error) {
	opts = opts.normalize()
	a, sels, unknown, err := s.resolveQuery(q)
	if err != nil {
		return nil, err
	}
	if unknown != "" {
		// Unknown constant: Query answers empty without evaluating.
		return &planner.Plan{Kind: planner.SemiNaive, Why: "unknown constant: empty answer"}, nil
	}
	if nArySeparableCandidate(a, sels) {
		return &planner.Plan{Kind: planner.Separable, Why: "n-ary separable candidate (Section 4.1)"}, nil
	}
	return a.ChooseMulti(sels, opts.planOpts()), nil
}

// Query answers one query atom over a recursive predicate.  Constant
// arguments become selections: the first constant drives the plan choice
// (the separable algorithm when Theorem 4.1 applies); remaining constants
// are applied as post-filters.
func (s *System) Query(q ast.Atom) (*QueryResult, error) {
	return s.QueryCtx(context.Background(), q)
}

// QueryCtx is Query with cancellation: the evaluation polls ctx at round
// barriers and inside worker shard scans, returning ctx's error promptly
// once it fires.
func (s *System) QueryCtx(ctx context.Context, q ast.Atom) (*QueryResult, error) {
	return s.QueryOn(ctx, s.Snapshot(), q, s.Opts)
}

// Evaluate answers a query request and materializes the full answer —
// the canonical entry point behind Query, QueryCtx and the deprecated
// QueryOn, and the full-control one the server front end uses to grant
// each query its own snapshot pin, worker budget and deadline while
// many queries share one System.  An unset req.Snap pins the current
// snapshot.  An evaluation panic (engine invariant violation) is
// recovered into an error wrapping ErrInternal rather than propagated,
// so a poisoned snapshot can fail queries without killing the process
// hosting them.
//
// Before planning anything, Evaluate consults the goal-level result
// cache: a repeated goal on the same snapshot version (same intended
// plan kind, strategy and worker count) is answered with the stored
// result — rows, stats and plan bit-for-bit identical to the query that
// built the entry.  Concurrent first queries for one key share a single
// evaluation (single-flight), run by the first arriver under its own
// context; waiters honor their own contexts and retry if the builder's
// context fires first.
func (s *System) Evaluate(ctx context.Context, req QueryRequest) (res *QueryResult, err error) {
	snap := req.Snap
	if snap == nil {
		snap = s.Snapshot()
	}
	q, opts := req.Goal, req.Opts
	defer func() {
		if r := recover(); r != nil {
			// The stack is the only pointer to the invariant violation
			// once the panic becomes an error; worker panics additionally
			// carry the stack captured inside the worker goroutine
			// (printed through %v).
			res, err = nil, fmt.Errorf("core: %w: query %v: %v\n%s", ErrInternal, q, r, debug.Stack())
		}
	}()
	opts = opts.normalize()
	a, sels, unknown, err := s.resolveQuery(q)
	if err != nil {
		return nil, err
	}
	if unknown != "" {
		// A constant occurring in no rule and no fact can appear in no
		// tuple of this (or any) snapshot: the answer is empty.  Cheaper
		// than a cache probe — never cached.
		return &QueryResult{
			Query:   q,
			Answer:  rel.NewRelation(q.Arity()),
			Plan:    &planner.Plan{Kind: planner.SemiNaive, Why: fmt.Sprintf("constant %q occurs in no rule or fact: empty answer", unknown)},
			Version: snap.Version,
		}, nil
	}

	key := resultKey{
		goal:     normalizeGoal(q),
		kind:     s.intendedKind(a, sels, opts),
		strategy: opts.Strategy,
		workers:  opts.Workers,
	}
	tr := eval.TracerFrom(ctx)
	var cancelled <-chan struct{}
	if ctx != nil {
		cancelled = ctx.Done()
	}
	// Bounded retry: an abandoned build (the builder's context fired
	// before completion) removes its entry, and a surviving waiter takes
	// over as the next builder.  The bound only guards against a
	// pathological stampede of short-deadline builders; on exhaustion the
	// query simply evaluates uncached.
	for attempt := 0; attempt < 4; attempt++ {
		e, build := s.results.acquire(key, snap.Version)
		if e == nil {
			// Cache disabled, or snapshot superseded: evaluate fresh.
			tr.Cache("result", "bypass", key.goal, 0)
			break
		}
		if build {
			tr.Cache("result", "miss", key.goal, 0)
			res, err := s.queryEval(ctx, snap, q, a, sels, opts)
			if err == nil {
				// Cached hits share one render of the sorted rows.
				res.memo = &rowsMemo{syms: s.Engine.Syms}
			}
			s.results.complete(e, res, err)
			return res, err
		}
		// Distinguish a completed entry ("hit") from a single-flight wait
		// on another query's in-flight build ("join", with the wait time).
		event, waited := "hit", time.Duration(0)
		select {
		case <-e.done:
		default:
			event = "join"
			start := time.Now()
			select {
			case <-e.done:
				waited = time.Since(start)
			case <-cancelled:
				return nil, ctx.Err()
			}
		}
		if e.err != nil {
			if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
				continue // the builder was abandoned, not us: retry
			}
			return nil, e.err
		}
		tr.Cache("result", event, key.goal, waited)
		hit := *e.res
		hit.Query = q
		hit.Cached = true
		return &hit, nil
	}
	return s.queryEval(ctx, snap, q, a, sels, opts)
}

// intendedKind predicts the plan kind QueryOn will execute for this
// resolved query — the plan-kind component of the result-cache key.  It
// intentionally mirrors the dispatch order of queryEval: an n-ary
// separable candidate keys as Separable even when execution later falls
// back (the fallback is deterministic for a fixed goal and options, so
// the key still addresses exactly one result).
func (s *System) intendedKind(a *planner.Analysis, sels []separable.Selection, opts Options) planner.Kind {
	if nArySeparableCandidate(a, sels) {
		return planner.Separable
	}
	return a.ChooseMulti(sels, opts.planOpts()).Kind
}

// queryEval is the uncached evaluation path behind QueryOn: plan choice,
// seed/magic cache injection, execution, post-filters.  It recovers
// evaluation panics into ErrInternal itself (rather than leaving that to
// QueryOn's recover) so that a panicking cache build still completes its
// entry — otherwise every waiter on the key would hang until its own
// deadline instead of observing the failure.
func (s *System) queryEval(ctx context.Context, snap *Snapshot, q ast.Atom, a *planner.Analysis, sels []separable.Selection, opts Options) (res *QueryResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: %w: query %v: %v\n%s", ErrInternal, q, r, debug.Stack())
		}
	}()
	// With two or more constants on commuting operators, try the n-ary
	// separable decomposition of Section 4.1:
	// σ0σ1…σn(ΣAᵢ)* = (σ1A1*)…(σnAn*)σ0.  When no legal assignment
	// exists, the query falls through to ChooseMulti, whose magic-seeded
	// branch still attempts a bound-tuple frontier over the full
	// adornment before conceding closure-then-filter.
	if nArySeparableCandidate(a, sels) {
		if res, ok, err := s.multiSeparable(ctx, snap, a, sels); err != nil {
			return nil, err
		} else if ok {
			res.Query = q
			return res, nil
		}
	}

	plan := a.ChooseMulti(sels, opts.planOpts())

	// Separable plans consume the primary selection, magic-seeded plans
	// the bound subset in Plan.Magic.Sels; every selection a plan does
	// not consume is applied as a post-filter.
	consumed := map[int]bool{}
	switch plan.Kind {
	case planner.Separable:
		if len(sels) > 0 {
			consumed[sels[0].Col] = true
		}
	case planner.MagicSeeded:
		if plan.Magic != nil {
			for _, sel := range plan.Magic.Sels {
				consumed[sel.Col] = true
			}
		}
	}
	seed, err := s.seedFor(ctx, a, snap)
	if err != nil {
		return nil, err
	}
	if plan.Kind == planner.MagicSeeded && plan.Magic != nil {
		// Inject the cached magic set for this (goal binding, snapshot):
		// repeated bound queries skip the frontier iteration entirely.
		set, stats, err := s.magicFor(ctx, a, snap, plan.Magic.Spec, plan.Magic.BoundTuple())
		if err != nil {
			return nil, err
		}
		plan.Magic.Set, plan.Magic.SetStats = set, stats
	}
	exec, err := a.ExecuteSeeded(ctx, s.Engine, snap.DB, plan, nil, opts.planOpts(), seed)
	if err != nil {
		return nil, err
	}
	ans := exec.Answer
	for _, sel := range sels {
		if !consumed[sel.Col] {
			ans = sel.Apply(ans)
		}
	}
	return &QueryResult{Query: q, Answer: ans, Stats: exec.Stats, Plan: plan, Version: snap.Version}, nil
}

// multiSeparable attempts to assign every selection to an operator slot of
// the n-ary separable formula: σ attached to Aᵢ must commute with every
// other operator; σ commuting with all operators becomes a σ0.  ok is false
// when no legal assignment exists (the caller falls back to other plans).
func (s *System) multiSeparable(ctx context.Context, snap *Snapshot, a *planner.Analysis, sels []separable.Selection) (*QueryResult, bool, error) {
	taken := map[int]bool{}
	var ms []separable.MultiSelection
	for _, sel := range sels {
		owner := -2 // unassigned
		commutesWithAll := true
		for i, op := range a.Ops {
			if !sel.CommutesWith(op) {
				if owner != -2 {
					owner = -3 // fails against two operators: illegal
					break
				}
				owner = i
				commutesWithAll = false
			}
		}
		switch {
		case commutesWithAll:
			ms = append(ms, separable.MultiSelection{OpIndex: -1, Sel: sel})
		case owner >= 0 && !taken[owner]:
			taken[owner] = true
			ms = append(ms, separable.MultiSelection{OpIndex: owner, Sel: sel})
		default:
			return nil, false, nil
		}
	}

	q, err := s.seedFor(ctx, a, snap)
	if err != nil {
		return nil, false, err
	}
	out, stats, err := separable.EvalMultiCtx(ctx, s.Engine, snap.DB, a.Ops, ms, q)
	if err != nil {
		return nil, false, err
	}
	plan := &planner.Plan{
		Kind: planner.Separable,
		Why:  fmt.Sprintf("n-ary separable decomposition with %d selections (Section 4.1)", len(sels)),
	}
	return &QueryResult{Answer: out, Stats: stats, Plan: plan, Version: snap.Version}, true, nil
}

// Run answers every "?-" query of the program in order.
func (s *System) Run() ([]*QueryResult, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run with cancellation.  All queries evaluate against the one
// snapshot current when RunCtx started.
func (s *System) RunCtx(ctx context.Context) ([]*QueryResult, error) {
	snap := s.Snapshot()
	var out []*QueryResult
	for _, q := range s.Prog.Queries {
		r, err := s.QueryOn(ctx, snap, q, s.Opts)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Report renders the analysis of every recursive predicate in the program.
func (s *System) Report() (string, error) {
	var b strings.Builder
	for _, pred := range s.Prog.IDBPreds() {
		recursive := false
		for _, r := range s.Prog.RulesFor(pred) {
			if r.IsRecursiveWith(pred) {
				recursive = true
			}
		}
		if !recursive {
			continue
		}
		a, err := s.Analyze(pred)
		if err != nil {
			return "", err
		}
		b.WriteString(a.Summary())
		plan := a.ChooseOpts(nil, s.Opts.planOpts())
		fmt.Fprintf(&b, "\nplan: %v — %s\n", plan.Kind, plan.Why)
	}
	return b.String(), nil
}
