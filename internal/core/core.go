// Package core is the facade tying the substrates together: load a Datalog
// program, analyze its linear recursion with the paper's machinery, choose
// an evaluation plan and answer queries.  The root package linrec re-exports
// this API for library users.
package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"linrec/internal/ast"
	"linrec/internal/eval"
	"linrec/internal/parser"
	"linrec/internal/planner"
	"linrec/internal/rel"
	"linrec/internal/separable"
)

// Options configure a System's evaluation.
type Options struct {
	// Workers sizes the closure worker pool: every semi-naive round shards
	// its delta across this many goroutines.  0 or 1 evaluates
	// sequentially; negative selects runtime.GOMAXPROCS(0).
	Workers int
	// Strategy optionally overrides the analysis-driven plan choice.
	Strategy planner.Strategy
}

func (o Options) normalize() Options {
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// System holds a loaded program, its extensional database and the engine.
// After loading, a System is safe for concurrent queries: Query, Run,
// Analyze and Report may be called from any number of goroutines over the
// shared database snapshot.
type System struct {
	Prog   *ast.Program
	Engine *eval.Engine
	DB     rel.DB
	Opts   Options

	mu       sync.Mutex
	analyses map[string]*planner.Analysis
}

// Load parses a Datalog program and loads its facts.
func Load(src string) (*System, error) {
	return LoadOptions(src, Options{})
}

// LoadOptions is Load with evaluation options.
func LoadOptions(src string, opts Options) (*System, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromProgramOptions(prog, opts)
}

// FromProgram wraps an already-parsed program.
func FromProgram(prog *ast.Program) (*System, error) {
	return FromProgramOptions(prog, Options{})
}

// FromProgramOptions is FromProgram with evaluation options.
func FromProgramOptions(prog *ast.Program, opts Options) (*System, error) {
	s := &System{
		Prog:     prog,
		Engine:   eval.NewEngine(nil),
		DB:       rel.DB{},
		Opts:     opts.normalize(),
		analyses: map[string]*planner.Analysis{},
	}
	if err := s.Engine.LoadFacts(s.DB, prog.Facts); err != nil {
		return nil, err
	}
	return s, nil
}

// Analyze runs (and caches) the paper's full analysis for one recursive
// predicate.
func (s *System) Analyze(pred string) (*planner.Analysis, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.analyses[pred]; ok {
		return a, nil
	}
	a, err := planner.Analyze(s.Prog, pred)
	if err != nil {
		return nil, err
	}
	s.analyses[pred] = a
	return a, nil
}

// planOpts maps the system options onto the planner's.
func (s *System) planOpts() planner.Options {
	return planner.Options{Workers: s.Opts.Workers, Strategy: s.Opts.Strategy}
}

// QueryResult pairs an answer with the plan that produced it.
type QueryResult struct {
	Query  ast.Atom
	Answer *rel.Relation
	Stats  eval.Stats
	Plan   *planner.Plan
}

// Rows renders the answer tuples as symbol strings, sorted.
func (qr *QueryResult) Rows(s *System) [][]string {
	var out [][]string
	for _, t := range qr.Answer.Tuples() {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = s.Engine.Syms.Name(v)
		}
		out = append(out, row)
	}
	return out
}

// Query answers one query atom over a recursive predicate.  Constant
// arguments become selections: the first constant drives the plan choice
// (the separable algorithm when Theorem 4.1 applies); remaining constants
// are applied as post-filters.
func (s *System) Query(q ast.Atom) (*QueryResult, error) {
	a, err := s.Analyze(q.Pred)
	if err != nil {
		return nil, err
	}
	if q.Arity() != a.Ops[0].Arity() {
		return nil, fmt.Errorf("core: query %v has arity %d, predicate has %d", q, q.Arity(), a.Ops[0].Arity())
	}

	var sels []separable.Selection
	for i, t := range q.Args {
		if !t.IsVar() {
			sels = append(sels, separable.Selection{Col: i, Value: s.Engine.Syms.Intern(t.Name)})
		}
	}

	// With two or more constants on commuting operators, try the n-ary
	// separable decomposition of Section 4.1:
	// σ0σ1…σn(ΣAᵢ)* = (σ1A1*)…(σnAn*)σ0.
	if len(sels) >= 2 && len(a.Ops) >= 2 && a.AllCommute() {
		if res, ok, err := s.multiSeparable(a, sels); err != nil {
			return nil, err
		} else if ok {
			res.Query = q
			return res, nil
		}
	}

	var primary *separable.Selection
	if len(sels) > 0 {
		primary = &sels[0]
	}
	plan := a.ChooseOpts(primary, s.planOpts())

	var execSel *separable.Selection
	if plan.Kind != planner.Separable {
		execSel = primary
	}
	res, err := a.ExecuteOpts(s.Engine, s.DB, plan, execSel, s.planOpts())
	if err != nil {
		return nil, err
	}
	ans := res.Answer
	for _, sel := range sels[min(1, len(sels)):] {
		ans = sel.Apply(ans)
	}
	return &QueryResult{Query: q, Answer: ans, Stats: res.Stats, Plan: plan}, nil
}

// multiSeparable attempts to assign every selection to an operator slot of
// the n-ary separable formula: σ attached to Aᵢ must commute with every
// other operator; σ commuting with all operators becomes a σ0.  ok is false
// when no legal assignment exists (the caller falls back to other plans).
func (s *System) multiSeparable(a *planner.Analysis, sels []separable.Selection) (*QueryResult, bool, error) {
	taken := map[int]bool{}
	var ms []separable.MultiSelection
	for _, sel := range sels {
		owner := -2 // unassigned
		commutesWithAll := true
		for i, op := range a.Ops {
			if !sel.CommutesWith(op) {
				if owner != -2 {
					owner = -3 // fails against two operators: illegal
					break
				}
				owner = i
				commutesWithAll = false
			}
		}
		switch {
		case commutesWithAll:
			ms = append(ms, separable.MultiSelection{OpIndex: -1, Sel: sel})
		case owner >= 0 && !taken[owner]:
			taken[owner] = true
			ms = append(ms, separable.MultiSelection{OpIndex: owner, Sel: sel})
		default:
			return nil, false, nil
		}
	}

	q := rel.NewRelation(a.Ops[0].Arity())
	for _, r := range a.ExitRules {
		t, err := s.Engine.EvalRule(s.DB, r)
		if err != nil {
			return nil, false, err
		}
		q.UnionInto(t)
	}
	out, stats, err := separable.EvalMulti(s.Engine, s.DB, a.Ops, ms, q)
	if err != nil {
		return nil, false, err
	}
	plan := &planner.Plan{
		Kind: planner.Separable,
		Why:  fmt.Sprintf("n-ary separable decomposition with %d selections (Section 4.1)", len(sels)),
	}
	return &QueryResult{Answer: out, Stats: stats, Plan: plan}, true, nil
}

// Run answers every "?-" query of the program in order.
func (s *System) Run() ([]*QueryResult, error) {
	var out []*QueryResult
	for _, q := range s.Prog.Queries {
		r, err := s.Query(q)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Report renders the analysis of every recursive predicate in the program.
func (s *System) Report() (string, error) {
	var b strings.Builder
	for _, pred := range s.Prog.IDBPreds() {
		recursive := false
		for _, r := range s.Prog.RulesFor(pred) {
			if r.IsRecursiveWith(pred) {
				recursive = true
			}
		}
		if !recursive {
			continue
		}
		a, err := s.Analyze(pred)
		if err != nil {
			return "", err
		}
		b.WriteString(a.Summary())
		plan := a.ChooseOpts(nil, s.planOpts())
		fmt.Fprintf(&b, "\nplan: %v — %s\n", plan.Kind, plan.Why)
	}
	return b.String(), nil
}
