package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"linrec/internal/eval"
	"linrec/internal/planner"
)

// chainSystem loads a linear chain v0→v1→…→v(n-1): the closure of
// p(v0, Y) gains exactly one answer per semi-naive round, so the round
// that produced the k-th answer is round k-1 — the golden number the
// early-termination trace must stop at.
func chainSystem(t *testing.T, n int) *System {
	t.Helper()
	var b strings.Builder
	b.WriteString("p(X,Y) :- e(X,Y).\np(X,Y) :- p(X,Z), e(Z,Y).\n")
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&b, "e(v%d,v%d).\n", i, i+1)
	}
	sys, err := Load(b.String())
	if err != nil {
		t.Fatalf("load chain: %v", err)
	}
	return sys
}

// TestStreamGoldenTraceEarlyTermination: a limit-k stream's trace shows
// one closure phase that stops at the round that produced the k-th
// answer — no later rounds, no further phases — at one and four
// workers.  The unbounded stream on the same goal proves the fixpoint
// genuinely had more rounds to run.
func TestStreamGoldenTraceEarlyTermination(t *testing.T) {
	const (
		n = 60 // full fixpoint: n-2 rounds past the seed
		k = 5  // k-th answer arrives in round k-1
	)
	sys := chainSystem(t, n)
	snap := sys.Snapshot()
	goal := mustAtom(t, "p(v0, Y)")
	// ForceSemiNaive keeps the goal's constant a per-row post-filter on a
	// plain closure, the shape whose round count is exactly predictable.
	opts := Options{Strategy: planner.ForceSemiNaive}

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			o := opts
			o.Workers = workers

			tr := &eval.Tracer{}
			ctx := eval.WithTracer(context.Background(), tr)
			st, err := sys.QueryStream(ctx, snap, goal, o, k)
			if err != nil {
				t.Fatalf("open stream: %v", err)
			}
			got := 0
			for {
				if _, ok := st.Next(); !ok {
					break
				}
				got++
			}
			if st.Err() != nil {
				t.Fatalf("stream errored: %v", st.Err())
			}
			st.Close()
			if got != k {
				t.Fatalf("yielded %d rows, want %d", got, k)
			}
			if !st.EarlyTerminated() {
				t.Fatal("stream did not report early termination")
			}

			trace := tr.Trace()
			if len(trace.Phases) != 1 {
				names := make([]string, len(trace.Phases))
				for i, p := range trace.Phases {
					names[i] = p.Name
				}
				t.Fatalf("trace has %d phases %v, want exactly one closure phase", len(trace.Phases), names)
			}
			ph := trace.Phases[0]
			if ph.Name != "semi-naive" {
				t.Fatalf("phase name %q, want semi-naive", ph.Name)
			}
			if len(ph.Rounds) != k-1 {
				t.Fatalf("closure ran %d rounds, want %d (the round producing the k-th answer)", len(ph.Rounds), k-1)
			}
			// The phase closed at the rows materialized when the stream
			// stopped: seed + one chain suffix per round, nowhere near the
			// full fixpoint.
			if ph.TotalRows == 0 || ph.TotalRows >= (n-1)*(n-2)/2 {
				t.Fatalf("phase TotalRows = %d; expected a small early-terminated prefix", ph.TotalRows)
			}

			// Baseline on the same goal, unbounded, fresh tracer: the full
			// fixpoint runs many more rounds, proving the limit cut real work.
			tr2 := &eval.Tracer{}
			ctx2 := eval.WithTracer(context.Background(), tr2)
			st2, err := sys.QueryStream(ctx2, snap, goal, o, 0)
			if err != nil {
				t.Fatalf("open unbounded stream: %v", err)
			}
			full := 0
			for {
				if _, ok := st2.Next(); !ok {
					break
				}
				full++
			}
			st2.Close()
			if st2.Cached() {
				t.Fatal("unbounded stream unexpectedly served from cache; the limited run must not have populated it")
			}
			if full != n-1 {
				t.Fatalf("unbounded stream yielded %d rows, want %d", full, n-1)
			}
			ph2 := tr2.Trace().Phases[0]
			if len(ph2.Rounds) <= len(ph.Rounds)+10 {
				t.Fatalf("full fixpoint ran %d rounds vs %d limited; the early exit saved too little to be meaningful",
					len(ph2.Rounds), len(ph.Rounds))
			}
		})
	}
}
