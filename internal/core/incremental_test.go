package core

import (
	"fmt"
	"sync"
	"testing"

	"linrec/internal/ast"
)

// TestIncrementalUpgradeOnAdd: a warm full-closure entry survives an
// additive swap as a maintained view — the post-add query is served
// Cached with rows equal to a from-scratch evaluation, and the upgrade
// counters advance instead of the invalidation counter purging the
// entry.
func TestIncrementalUpgradeOnAdd(t *testing.T) {
	sys, err := Load(chainProgram(4))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	open := ast.NewAtom("path", ast.V("X"), ast.V("Y"))
	r1, err := sys.Query(open)
	if err != nil {
		t.Fatalf("warm query: %v", err)
	}
	if r1.Answer.Len() != 4*5/2 {
		t.Fatalf("warm rows = %d, want %d", r1.Answer.Len(), 4*5/2)
	}
	snap, added, m, err := sys.AddFactsMaint([]ast.Atom{edgeFact(4, 5)})
	if err != nil || added != 1 {
		t.Fatalf("AddFactsMaint: added=%d err=%v", added, err)
	}
	if m.ResultsUpgraded != 1 || m.ResultsPurged != 0 {
		t.Fatalf("maintenance = %+v, want 1 result upgraded, 0 purged", m)
	}
	r2, err := sys.Query(open)
	if err != nil {
		t.Fatalf("post-add query: %v", err)
	}
	if !r2.Cached {
		t.Fatalf("post-add full-closure query was not served from the maintained cache")
	}
	if r2.Version != snap.Version {
		t.Fatalf("maintained result at version %d, want %d", r2.Version, snap.Version)
	}
	if want := 5 * 6 / 2; r2.Answer.Len() != want {
		t.Fatalf("maintained rows = %d, want %d", r2.Answer.Len(), want)
	}
	st := sys.ResultCacheStats()
	if st.Upgrades != 1 || st.UpgradeFallbacks != 0 {
		t.Fatalf("stats upgrades=%d fallbacks=%d, want 1/0", st.Upgrades, st.UpgradeFallbacks)
	}
}

// TestIncrementalUpgradeOnRetract: delete-and-rederive carries a warm
// full-closure entry across a retraction — including one that removes a
// mid-chain edge whose cone has surviving re-derivations elsewhere.
func TestIncrementalUpgradeOnRetract(t *testing.T) {
	// Chain c0→…→c5 plus a shortcut c1→c3: retracting edge c2→c3 deletes
	// the cone through c2 but paths through the shortcut must re-derive.
	src := chainProgram(5) + "edge(c1,c3).\n"
	sys, err := Load(src)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	open := ast.NewAtom("path", ast.V("X"), ast.V("Y"))
	if _, err := sys.Query(open); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	_, removed, m, err := sys.RemoveFactsMaint([]ast.Atom{edgeFact(2, 3)})
	if err != nil || removed != 1 {
		t.Fatalf("RemoveFactsMaint: removed=%d err=%v", removed, err)
	}
	if m.ResultsUpgraded != 1 {
		t.Fatalf("maintenance = %+v, want the full-closure entry upgraded", m)
	}
	r, err := sys.Query(open)
	if err != nil {
		t.Fatalf("post-retract query: %v", err)
	}
	if !r.Cached {
		t.Fatalf("post-retract full-closure query was not served from the maintained cache")
	}
	fresh, err := Load(src)
	if err != nil {
		t.Fatalf("fresh load: %v", err)
	}
	if _, _, err := fresh.RemoveFacts([]ast.Atom{edgeFact(2, 3)}); err != nil {
		t.Fatalf("fresh retract: %v", err)
	}
	want, err := fresh.Query(open)
	if err != nil {
		t.Fatalf("fresh query: %v", err)
	}
	if got, exp := fmt.Sprint(r.Rows(sys)), fmt.Sprint(want.Rows(fresh)); got != exp {
		t.Fatalf("maintained answer diverges from from-scratch:\ngot  %s\nwant %s", got, exp)
	}
}

// TestIncrementalNoOpUpgradeIsFree: a swap touching a predicate that
// cannot reach the cached goal carries the entry without recomputation —
// the answer relation stays pointer-shared with the pre-swap result.
func TestIncrementalNoOpUpgradeIsFree(t *testing.T) {
	sys, err := Load(chainProgram(3) + "other(X,Y) :- unrelated(X,Y).\nunrelated(u1,u2).\n")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	open := ast.NewAtom("path", ast.V("X"), ast.V("Y"))
	r1, err := sys.Query(open)
	if err != nil {
		t.Fatalf("warm query: %v", err)
	}
	_, added, m, err := sys.AddFactsMaint([]ast.Atom{ast.NewAtom("unrelated", ast.C("u3"), ast.C("u4"))})
	if err != nil || added != 1 {
		t.Fatalf("AddFactsMaint: added=%d err=%v", added, err)
	}
	if m.ResultsUpgraded != 1 {
		t.Fatalf("maintenance = %+v, want a free upgrade", m)
	}
	r2, err := sys.Query(open)
	if err != nil {
		t.Fatalf("post-swap query: %v", err)
	}
	if !r2.Cached || r2.Answer != r1.Answer {
		t.Fatalf("untouched goal should share the pre-swap answer (cached=%v, shared=%v)",
			r2.Cached, r2.Answer == r1.Answer)
	}
}

// TestIncrementalBoundGoalFallsBack: bound goals stay on the purge path —
// their magic/separable plans are not maintainable views — and the
// fallback counters say so.
func TestIncrementalBoundGoalFallsBack(t *testing.T) {
	sys, err := Load(chainProgram(3))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	bound := ast.NewAtom("path", ast.C("c0"), ast.V("Y"))
	if _, err := sys.Query(bound); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	_, _, m, err := sys.AddFactsMaint([]ast.Atom{edgeFact(3, 4)})
	if err != nil {
		t.Fatalf("AddFactsMaint: %v", err)
	}
	if m.ResultsUpgraded != 0 || m.ResultsPurged != 1 {
		t.Fatalf("maintenance = %+v, want the bound entry purged", m)
	}
	r, err := sys.Query(bound)
	if err != nil {
		t.Fatalf("post-add query: %v", err)
	}
	if r.Cached {
		t.Fatalf("purged bound entry served a stale hit")
	}
	if want := 4; r.Answer.Len() != want {
		t.Fatalf("post-add rows = %d, want %d", r.Answer.Len(), want)
	}
	if st := sys.ResultCacheStats(); st.UpgradeFallbacks < 1 {
		t.Fatalf("upgrade_fallbacks = %d, want ≥ 1", st.UpgradeFallbacks)
	}
}

// TestSeedSweepOnSwap: a swap retires the seed/magic cache eagerly —
// magic sets are dropped on the spot (not parked until the next query's
// lazy sweep), while the exit-rule seed is delta-upgraded in place and
// already contains the new tuples on an otherwise idle System.
func TestSeedSweepOnSwap(t *testing.T) {
	sys, err := Load(chainProgram(3))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Populate both cache dimensions: a bound goal builds a magic set, an
	// open goal builds the exit-rule seed.
	if _, err := sys.Query(ast.NewAtom("path", ast.C("c0"), ast.V("Y"))); err != nil {
		t.Fatalf("bound query: %v", err)
	}
	if _, err := sys.Query(ast.NewAtom("path", ast.V("X"), ast.V("Y"))); err != nil {
		t.Fatalf("open query: %v", err)
	}
	next, _, m, err := sys.AddFactsMaint([]ast.Atom{edgeFact(3, 4)})
	if err != nil {
		t.Fatalf("AddFactsMaint: %v", err)
	}
	if m.SeedsUpgraded < 1 || m.SeedsPurged < 1 {
		t.Fatalf("maintenance = %+v, want the exit seed upgraded and the magic set purged", m)
	}
	sys.seedMu.Lock()
	defer sys.seedMu.Unlock()
	if sys.seedVersion != next.Version {
		t.Fatalf("seed cache at version %d after swap to %d", sys.seedVersion, next.Version)
	}
	for key, f := range sys.seeds {
		if key.adorn != "" {
			t.Fatalf("stale magic set %v survived the eager sweep", key)
		}
		select {
		case <-f.done:
		default:
			t.Fatalf("carried seed %v is not completed", key)
		}
		// The upgraded seed must already include the new exit-rule
		// derivation (edge(c3,c4) is a path seed tuple).
		a, ok1 := sys.Engine.Syms.Lookup("c3")
		b, ok2 := sys.Engine.Syms.Lookup("c4")
		if !ok1 || !ok2 {
			t.Fatalf("new constants missing from the symbol table")
		}
		if !f.q.Has([]int32{a, b}) {
			t.Fatalf("upgraded seed for %v is missing the new exit derivation", key)
		}
	}
}

// TestAddFactsRejectedBatchKeepsSymtab: a batch rejected for any
// validation reason — including inconsistencies only visible against the
// current snapshot or within the batch itself — must leave the shared
// symbol table byte-identical, or repeatedly rejected remote batches
// would grow it without bound.
func TestAddFactsRejectedBatchKeepsSymtab(t *testing.T) {
	sys, err := Load(chainProgram(2))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	before := sys.Engine.Syms.Len()
	cases := [][]ast.Atom{
		// Intra-batch arity inconsistency on a predicate the program has
		// never seen: each fact is fine in isolation.
		{
			ast.NewAtom("freshpred", ast.C("leak1"), ast.C("leak2")),
			ast.NewAtom("freshpred", ast.C("leak3")),
		},
		// Later fact conflicts with the snapshot relation's arity after
		// earlier valid facts of the same batch.
		{
			edgeFact(7, 8),
			ast.NewAtom("edge", ast.C("leak4"), ast.C("leak5"), ast.C("leak6")),
		},
		// Derived-predicate fact after a valid fact.
		{
			edgeFact(9, 10),
			ast.NewAtom("path", ast.C("leak7"), ast.C("leak8")),
		},
	}
	for i, batch := range cases {
		if _, _, err := sys.AddFacts(batch); err == nil {
			t.Fatalf("case %d: invalid batch accepted", i)
		}
		if got := sys.Engine.Syms.Len(); got != before {
			t.Fatalf("case %d: symbol table grew from %d to %d on a rejected batch", i, before, got)
		}
	}
	for _, name := range []string{"leak1", "leak4", "leak7", "c7", "c9"} {
		if _, ok := sys.Engine.Syms.Lookup(name); ok {
			t.Fatalf("rejected batch interned %q", name)
		}
	}
	// The same batches still validate identically through ValidateFacts.
	for i, batch := range cases {
		if err := sys.ValidateFacts(batch); err == nil {
			t.Fatalf("case %d: ValidateFacts accepted what AddFacts rejects", i)
		}
	}
}

// TestIncrementalMaintenanceRace: readers hammer the full-closure goal
// while a writer alternates adds and retracts of the chain's tail edge.
// Every answer must match the version it reports, whether it was
// maintained, rebuilt or served mid-swap.  Run under -race in CI.
func TestIncrementalMaintenanceRace(t *testing.T) {
	const (
		initial = 6
		cycles  = 25
		readers = 4
	)
	sys, err := LoadOptions(chainProgram(initial), Options{Workers: 2})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	open := ast.NewAtom("path", ast.V("X"), ast.V("Y"))
	rowsAt := func(version uint64) int {
		n := initial
		if version%2 == 0 {
			n = initial + 1
		}
		return n * (n + 1) / 2
	}
	if r, err := sys.Query(open); err != nil || r.Answer.Len() != rowsAt(1) {
		t.Fatalf("warm query: rows=%v err=%v", r, err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	done := make(chan struct{})
	extra := []ast.Atom{edgeFact(initial, initial+1)}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < cycles; i++ {
			if _, added, err := sys.AddFacts(extra); err != nil || added != 1 {
				errs <- fmt.Errorf("cycle %d: add=%d err=%v", i, added, err)
				return
			}
			if _, removed, err := sys.RemoveFacts(extra); err != nil || removed != 1 {
				errs <- fmt.Errorf("cycle %d: removed=%d err=%v", i, removed, err)
				return
			}
		}
	}()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r, err := sys.Query(open)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", g, err)
					return
				}
				if want := rowsAt(r.Version); r.Answer.Len() != want {
					errs <- fmt.Errorf("reader %d: %d rows at version %d, want %d",
						g, r.Answer.Len(), r.Version, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := sys.ResultCacheStats(); st.Upgrades == 0 {
		t.Fatalf("maintenance race never upgraded an entry: %+v", st)
	}
	final, err := sys.Query(open)
	if err != nil || final.Answer.Len() != rowsAt(final.Version) {
		t.Fatalf("settled query: rows=%d err=%v", final.Answer.Len(), err)
	}
}
