package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"linrec/internal/ast"
	"linrec/internal/parser"
	"linrec/internal/planner"
)

// parseFacts parses Datalog source containing only ground facts.
func parseFacts(src string) ([]ast.Atom, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return prog.Facts, nil
}

// magicRaceProgram: a left-chain transitive closure (context-mode magic on
// column 0) over an initial chain c0 → … → c19.
func magicRaceProgram() string {
	var b strings.Builder
	b.WriteString("p(X,Y) :- e(X,Y).\np(X,Y) :- e(X,Z), p(Z,Y).\n")
	for i := 0; i < 19; i++ {
		fmt.Fprintf(&b, "e(c%d,c%d).\n", i, i+1)
	}
	return b.String()
}

// TestMagicCacheConcurrentQueriesAndSwaps hammers the (goal-binding,
// version) magic cache: many goroutines issue bound queries over a mix of
// hot and cold bindings — hitting the single-flight build, the cached
// set, and superseded snapshots — while a writer keeps publishing new
// snapshots.  Run under -race this is the data-race proof for the new
// cache dimension; afterwards every binding's cached answer must equal a
// fresh closure-then-filter baseline on the final snapshot.
func TestMagicCacheConcurrentQueriesAndSwaps(t *testing.T) {
	sys, err := Load(magicRaceProgram())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	ctx := context.Background()

	const readers = 8
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 60; i++ {
				// Bias toward c0: a hot binding exercises cache hits while
				// the tail still forces fresh single-flight builds.
				k := 0
				if rng.Intn(3) > 0 {
					k = rng.Intn(20)
				}
				goal := mustAtom(t, fmt.Sprintf("p(c%d, Y)", k))
				res, err := sys.QueryCtx(ctx, goal)
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", g, err)
					return
				}
				if res.Plan.Kind != planner.MagicSeeded {
					errc <- fmt.Errorf("reader %d: plan = %v, want MagicSeeded (%s)", g, res.Plan.Kind, res.Plan.Why)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			facts, err := parseFacts(fmt.Sprintf("e(c%d,d%d). e(d%d,c%d).", i%20, i, i, (i+7)%20))
			if err != nil {
				errc <- err
				return
			}
			if _, _, err := sys.AddFacts(facts); err != nil {
				errc <- fmt.Errorf("writer: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Settled state: cached magic answers equal the forced baseline.
	snap := sys.Snapshot()
	for k := 0; k < 20; k++ {
		goal := mustAtom(t, fmt.Sprintf("p(c%d, Y)", k))
		auto, err := sys.QueryOn(ctx, snap, goal, Options{})
		if err != nil {
			t.Fatalf("auto p(c%d,Y): %v", k, err)
		}
		base, err := sys.QueryOn(ctx, snap, goal, Options{Strategy: planner.ForceSemiNaive})
		if err != nil {
			t.Fatalf("baseline p(c%d,Y): %v", k, err)
		}
		if !reflect.DeepEqual(auto.Rows(sys), base.Rows(sys)) {
			t.Fatalf("p(c%d,Y): cached magic answer diverges from baseline: %d vs %d rows",
				k, auto.Answer.Len(), base.Answer.Len())
		}
	}
}

// TestMagicCacheStatsDeterministic: the first bound query pays for the
// magic frontier; a second identical query reuses the cached set but must
// report identical rows and statistics (the build's stats are stored with
// the set).
func TestMagicCacheStatsDeterministic(t *testing.T) {
	sys, err := Load(magicRaceProgram())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	goal := mustAtom(t, "p(c3, Y)")
	first, err := sys.Query(goal)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	second, err := sys.Query(goal)
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if first.Plan.Kind != planner.MagicSeeded || second.Plan.Kind != planner.MagicSeeded {
		t.Fatalf("plans = %v, %v, want MagicSeeded", first.Plan.Kind, second.Plan.Kind)
	}
	if !reflect.DeepEqual(first.Rows(sys), second.Rows(sys)) {
		t.Fatalf("cached query changed the answer")
	}
	if first.Stats != second.Stats {
		t.Fatalf("cache hit changed statistics: %v vs %v", first.Stats, second.Stats)
	}
}

// TestMagicCacheCapBounded: sweeping more distinct bound constants than
// magicCacheCap must not grow the cache without bound, and queries past
// the cap (computed inline, uncached) still answer correctly.
func TestMagicCacheCapBounded(t *testing.T) {
	var b strings.Builder
	b.WriteString("p(X,Y) :- e(X,Y).\np(X,Y) :- e(X,Z), p(Z,Y).\n")
	const n = magicCacheCap + 200
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "e(c%d,c%d).\n", i, i+1)
	}
	sys, err := Load(b.String())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	snap := sys.Snapshot()
	for k := n - 1; k >= 0; k-- { // back to front: tiny answers first
		goal := mustAtom(t, fmt.Sprintf("p(c%d, Y)", k))
		res, err := sys.QueryOn(context.Background(), snap, goal, Options{})
		if err != nil {
			t.Fatalf("p(c%d,Y): %v", k, err)
		}
		if want := n - k; res.Answer.Len() != want {
			t.Fatalf("p(c%d,Y) = %d rows, want %d", k, res.Answer.Len(), want)
		}
	}
	sys.seedMu.Lock()
	entries := len(sys.seeds)
	sys.seedMu.Unlock()
	if entries > magicCacheCap+1 { // +1: the exit-rule seed entry
		t.Fatalf("cache grew to %d entries, cap is %d", entries, magicCacheCap)
	}
}
