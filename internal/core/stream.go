// Streaming queries: Stream is the pull-based sibling of Evaluate.
// Where Evaluate runs the chosen plan to its fixpoint and hands back a
// materialized answer, Stream hands back an iterator whose underlying
// closure advances only as rows are pulled — a consumer that stops
// after k rows (a limit-k or exists query) stops the fixpoint at the
// round that produced its k-th answer.
//
// Streaming covers the three closure-shaped plan paths: plain
// semi-naive, the final group of a decomposed closure (earlier groups
// must materialize — they feed the next closure's seed), and the
// magic-restricted closure of filter-mode magic plans.  The remaining
// plan kinds (separable, bounded, context-mode magic, the n-ary
// separable decomposition) produce their answer as a whole; those
// queries evaluate exactly as Evaluate and stream the finished
// relation, so early termination saves transport but not evaluation.
//
// Result-cache interaction: a stream peeks the goal-level cache and
// serves a completed entry's rows, but never joins an in-flight build
// (a stream's consumer controls its pace; parking it behind another
// query's evaluation would defeat the point).  Limited streams never
// populate the cache — their evaluation may be partial.  An unbounded
// stream that reaches natural exhaustion holds the same full answer
// Evaluate would have built and populates the cache with it.

package core

import (
	"context"
	"fmt"
	"runtime/debug"

	"linrec/internal/ast"
	"linrec/internal/eval"
	"linrec/internal/planner"
	"linrec/internal/rel"
	"linrec/internal/separable"
)

// QueryStream is a pull-based handle on one query's answer rows.  It is
// not safe for concurrent use; a single consumer calls Next until it
// returns false (or until it has enough rows) and then Close.  Close is
// idempotent and required: an abandoned stream holds its context
// watcher and open trace phase until closed.
type QueryStream struct {
	sys     *System
	query   ast.Atom
	plan    *planner.Plan
	version uint64
	cached  bool
	limit   int

	// Exactly one of closure/src feeds rows: closure for the live
	// streaming paths, src for cached or materialized answers.
	closure  *eval.ClosureStream
	src      eval.RowIter
	filters  []separable.Selection
	preStats eval.Stats

	key      resultKey
	populate bool // cache the reconstructed answer at natural exhaustion

	names   []string
	yielded int
	err     error
	done    bool
	early   bool
	closed  bool
}

// Stream opens a streamed evaluation of a query request — the
// pull-based sibling of Evaluate, and the canonical entry point behind
// the deprecated QueryStream.  An unset req.Snap pins the current
// snapshot.  req.Limit > 0 caps the stream at that many rows (the k-th
// row ends it, and rounds past the one that produced it never run);
// Limit ≤ 0 streams the full answer.  Construction may already
// evaluate: the seed, a magic frontier, or — for plan kinds with no
// streamable closure — the whole query.  Errors during construction or
// streaming that stem from engine invariant violations are recovered
// into ErrInternal, as in Evaluate.
func (s *System) Stream(ctx context.Context, req QueryRequest) (st *QueryStream, err error) {
	snap := req.Snap
	if snap == nil {
		snap = s.Snapshot()
	}
	q, opts, limit := req.Goal, req.Opts, req.Limit
	defer func() {
		if r := recover(); r != nil {
			st, err = nil, fmt.Errorf("core: %w: query %v: %v\n%s", ErrInternal, q, r, debug.Stack())
		}
	}()
	opts = opts.normalize()
	if limit < 0 {
		limit = 0
	}
	a, sels, unknown, err := s.resolveQuery(q)
	if err != nil {
		return nil, err
	}
	st = &QueryStream{sys: s, query: q, version: snap.Version, limit: limit}
	if unknown != "" {
		st.plan = &planner.Plan{Kind: planner.SemiNaive, Why: fmt.Sprintf("constant %q occurs in no rule or fact: empty answer", unknown)}
		st.src = eval.RelationRows(nil)
		return st, nil
	}
	st.key = resultKey{
		goal:     normalizeGoal(q),
		kind:     s.intendedKind(a, sels, opts),
		strategy: opts.Strategy,
		workers:  opts.Workers,
	}
	tr := eval.TracerFrom(ctx)
	if res := s.results.peek(st.key, snap.Version); res != nil {
		tr.Cache("result", "hit", st.key.goal, 0)
		st.plan, st.cached = res.Plan, true
		st.preStats = res.Stats
		st.src = eval.RelationRows(res.Answer)
		return st, nil
	}
	tr.Cache("result", "miss", st.key.goal, 0)

	if nArySeparableCandidate(a, sels) {
		return s.materializedStream(ctx, snap, q, a, sels, opts, st)
	}
	plan := a.ChooseMulti(sels, opts.planOpts())
	st.plan = plan
	st.filters = sels
	pe := eval.Parallel(s.Engine, max(1, opts.Workers))
	switch {
	case plan.Kind == planner.SemiNaive:
		seed, err := s.seedFor(ctx, a, snap)
		if err != nil {
			return nil, err
		}
		st.closure = pe.StreamCtx(ctx, snap.DB, a.Ops, seed)
		st.populate = true
	case plan.Kind == planner.Decomposed:
		seed, err := s.seedFor(ctx, a, snap)
		if err != nil {
			return nil, err
		}
		// Groups run right-to-left; every closure but the last feeds the
		// next one's seed and must materialize.  Only the final group's
		// closure (Groups[0]) streams.
		cur := seed
		for i := len(plan.Groups) - 1; i >= 1; i-- {
			next, stats, err := pe.SemiNaiveCtx(ctx, snap.DB, groupOps(a, plan.Groups[i]), cur)
			st.preStats.Add(stats)
			if err != nil {
				return nil, err
			}
			cur = next
		}
		st.closure = pe.StreamCtx(ctx, snap.DB, groupOps(a, plan.Groups[0]), cur)
		st.populate = true
	case plan.Kind == planner.MagicSeeded && plan.Magic != nil:
		seed, err := s.seedFor(ctx, a, snap)
		if err != nil {
			return nil, err
		}
		m := plan.Magic
		set, mstats, err := s.magicFor(ctx, a, snap, m.Spec, m.BoundTuple())
		if err != nil {
			return nil, err
		}
		st.preStats.Add(mstats)
		if m.Mode == planner.MagicFilter {
			restricted := seed.SelectInCols(m.Spec.Cols, set)
			st.closure = pe.StreamRestrictedCtx(ctx, snap.DB, a.Ops, restricted, m.Spec.Cols, set)
			st.populate = true
		} else {
			// Context mode collects the whole answer from the frontier —
			// already output-proportional, nothing left to stream lazily.
			ans := eval.MagicCollect(seed, m.Spec.Cols, m.BoundTuple(), set, &st.preStats)
			for _, sel := range sels {
				ans = sel.Apply(ans)
			}
			res := &QueryResult{Query: q, Answer: ans, Stats: st.preStats, Plan: plan, Version: snap.Version}
			s.populateResult(st.key, snap.Version, res)
			st.filters = nil
			st.src = eval.RelationRows(ans)
		}
	default:
		return s.materializedStream(ctx, snap, q, a, sels, opts, st)
	}
	return st, nil
}

// materializedStream finishes construction for plan kinds without a
// streamable closure: the query evaluates exactly as QueryOn (full
// answer, full cost) and the stream serves the finished relation.  The
// complete answer populates the result cache even under a limit — the
// evaluation was paid in full regardless.
func (s *System) materializedStream(ctx context.Context, snap *Snapshot, q ast.Atom, a *planner.Analysis, sels []separable.Selection, opts Options, st *QueryStream) (*QueryStream, error) {
	res, err := s.queryEval(ctx, snap, q, a, sels, opts)
	if err != nil {
		return nil, err
	}
	s.populateResult(st.key, snap.Version, res)
	st.plan = res.Plan
	st.preStats = res.Stats
	st.filters = nil
	st.src = eval.RelationRows(res.Answer)
	return st, nil
}

// populateResult offers a complete query result to the result cache
// without ever blocking: if no entry exists for the key it becomes a
// completed entry, and if one exists (in-flight or done) the offer is
// dropped — the cache's single-flight builders keep their own protocol.
func (s *System) populateResult(key resultKey, version uint64, res *QueryResult) {
	if res == nil {
		return
	}
	e, build := s.results.acquire(key, version)
	if e == nil || !build {
		return
	}
	res.memo = &rowsMemo{syms: s.Engine.Syms}
	s.results.complete(e, res, nil)
}

// groupOps resolves a decomposed plan group's operator indexes.
func groupOps(a *planner.Analysis, idxs []int) []*ast.Op {
	ops := make([]*ast.Op, 0, len(idxs))
	for _, i := range idxs {
		ops = append(ops, a.Ops[i])
	}
	return ops
}

// match applies the query's residual selections to one candidate row.
func (st *QueryStream) match(t rel.Tuple) bool {
	for _, sel := range st.filters {
		if t[sel.Col] != sel.Value {
			return false
		}
	}
	return true
}

// Next yields the next answer row, advancing the underlying closure by
// as many rounds as it takes to produce one (or prove there are none).
// The returned tuple is owned by the stream: Clone rows that must
// outlive it.  After a false return, Err distinguishes exhaustion or a
// reached limit (nil) from a cancelled or failed evaluation.
func (st *QueryStream) Next() (row rel.Tuple, ok bool) {
	if st.done || st.err != nil {
		return nil, false
	}
	defer func() {
		if r := recover(); r != nil {
			// A worker panic re-raised at the round barrier surfaces here,
			// in the consumer's stack; recover it into ErrInternal exactly
			// as QueryOn does.
			st.err = fmt.Errorf("core: %w: query %v: %v\n%s", ErrInternal, st.query, r, debug.Stack())
			st.done = true
			st.finish()
			row, ok = nil, false
		}
	}()
	for {
		var t rel.Tuple
		var more bool
		if st.closure != nil {
			t, more = st.closure.Next()
		} else {
			t, more = st.src.Next()
		}
		if !more {
			if st.closure != nil {
				st.err = st.closure.Err()
			}
			st.done = true
			st.finish()
			return nil, false
		}
		if !st.match(t) {
			continue
		}
		st.yielded++
		if st.limit > 0 && st.yielded >= st.limit {
			// The k-th row ends the stream: mark it done (and release the
			// closure) before handing the row out, so no further round can
			// run on a later Next.
			st.done, st.early = true, true
			st.finish()
		}
		return t, true
	}
}

// finish releases the stream's resources once and, when an unbounded
// stream exhausted its closure naturally, offers the reconstructed full
// answer to the result cache.
func (st *QueryStream) finish() {
	if st.closed {
		return
	}
	st.closed = true
	if st.src != nil {
		st.src.Close()
	}
	if st.closure == nil {
		return
	}
	exhausted := st.closure.Exhausted()
	st.closure.Close()
	if st.populate && st.limit == 0 && !st.early && exhausted && st.err == nil {
		ans := st.closure.Total()
		for _, sel := range st.filters {
			ans = sel.Apply(ans)
		}
		stats := st.preStats
		stats.Add(st.closure.Stats())
		st.sys.populateResult(st.key, st.version, &QueryResult{
			Query:   st.query,
			Answer:  ans,
			Stats:   stats,
			Plan:    st.plan,
			Version: st.version,
		})
	}
}

// Close ends the stream early; rounds not yet run never run.  Idempotent.
func (st *QueryStream) Close() {
	st.done = true
	st.finish()
}

// Err reports why the stream stopped: nil for exhaustion or a reached
// limit, the context's error for a cancelled evaluation, an ErrInternal
// wrapper for a recovered engine panic.
func (st *QueryStream) Err() error { return st.err }

// Stats returns the evaluation statistics accumulated so far: any
// pre-stream work (magic frontier, earlier decomposed groups, or the
// full evaluation on materialized paths) plus the closure rounds that
// actually ran.
func (st *QueryStream) Stats() eval.Stats {
	stats := st.preStats
	if st.closure != nil {
		stats.Add(st.closure.Stats())
	}
	return stats
}

// Plan returns the evaluation plan the stream executes.
func (st *QueryStream) Plan() *planner.Plan { return st.plan }

// Version returns the snapshot version the stream evaluates against.
func (st *QueryStream) Version() uint64 { return st.version }

// Cached reports that the stream serves a completed result-cache entry
// instead of evaluating.
func (st *QueryStream) Cached() bool { return st.cached }

// EarlyTerminated reports that the stream stopped at its limit, leaving
// the underlying evaluation's remaining rounds unrun — the signal the
// server's early-termination counters record.
func (st *QueryStream) EarlyTerminated() bool { return st.early }

// RowsYielded returns the number of rows handed out so far.
func (st *QueryStream) RowsYielded() int { return st.yielded }

// RenderRow renders one yielded tuple as symbol strings, with the same
// unknown-value fallback as QueryResult.Rows.  The symbol-table snapshot
// is taken on first use and reused for the stream's life.
func (st *QueryStream) RenderRow(t rel.Tuple) []string {
	if st.names == nil {
		st.names = st.sys.Engine.Syms.Names()
	}
	row := make([]string, len(t))
	for i, v := range t {
		if int(v) >= 0 && int(v) < len(st.names) {
			row[i] = st.names[v]
		} else {
			row[i] = fmt.Sprintf("#%d", v)
		}
	}
	return row
}
