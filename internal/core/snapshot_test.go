package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"linrec/internal/ast"
)

// chainProgram builds a path/edge program over a chain c0→c1→…→cN.
func chainProgram(n int) string {
	var b strings.Builder
	b.WriteString("path(X,Y) :- edge(X,Y).\n")
	b.WriteString("path(X,Y) :- path(X,U), edge(U,Y).\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "edge(c%d,c%d).\n", i, i+1)
	}
	return b.String()
}

func edgeFact(from, to int) ast.Atom {
	return ast.NewAtom("edge", ast.C(fmt.Sprintf("c%d", from)), ast.C(fmt.Sprintf("c%d", to)))
}

// TestAddFactsSwapIsolation: a swap bumps the version and becomes visible
// to new queries, while a query pinned to the old snapshot still sees the
// old world.
func TestAddFactsSwapIsolation(t *testing.T) {
	sys, err := Load(chainProgram(2))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	goal := ast.NewAtom("path", ast.C("c0"), ast.V("Y"))

	old := sys.Snapshot()
	if old.Version != 1 {
		t.Fatalf("initial version = %d, want 1", old.Version)
	}
	r1, err := sys.Query(goal)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r1.Answer.Len() != 2 || r1.Version != 1 {
		t.Fatalf("initial answer = %d rows at version %d", r1.Answer.Len(), r1.Version)
	}

	next, added, err := sys.AddFacts([]ast.Atom{edgeFact(2, 3)})
	if err != nil {
		t.Fatalf("AddFacts: %v", err)
	}
	if next.Version != 2 || added != 1 {
		t.Fatalf("post-swap version = %d (added %d), want 2 (added 1)", next.Version, added)
	}

	r2, err := sys.Query(goal)
	if err != nil {
		t.Fatalf("Query after swap: %v", err)
	}
	if r2.Answer.Len() != 3 || r2.Version != 2 {
		t.Fatalf("post-swap answer = %d rows at version %d, want 3 at 2", r2.Answer.Len(), r2.Version)
	}

	// The pinned old snapshot still answers from the old world.
	rOld, err := sys.QueryOn(context.Background(), old, goal, sys.Opts)
	if err != nil {
		t.Fatalf("QueryOn(old): %v", err)
	}
	if rOld.Answer.Len() != 2 || rOld.Version != 1 {
		t.Fatalf("pinned snapshot answer = %d rows at version %d, want 2 at 1", rOld.Answer.Len(), rOld.Version)
	}
	// Relations untouched by the swap are shared, not copied.
	if old.DB.Probe("path") != next.DB.Probe("path") {
		t.Fatalf("untouched relations should be shared between snapshots")
	}
	if old.DB.Probe("edge") == next.DB.Probe("edge") {
		t.Fatalf("the grown relation must be cloned, not shared")
	}
}

// TestAddFactsRejectsBadFacts: non-ground atoms and arity mismatches are
// rejected without publishing a snapshot.
func TestAddFactsRejectsBadFacts(t *testing.T) {
	sys, err := Load(chainProgram(2))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	v := sys.Snapshot().Version
	if _, _, err := sys.AddFacts([]ast.Atom{ast.NewAtom("edge", ast.C("c9"), ast.V("Y"))}); err == nil {
		t.Fatalf("non-ground fact accepted")
	}
	if _, _, err := sys.AddFacts([]ast.Atom{ast.NewAtom("edge", ast.C("c9"))}); err == nil {
		t.Fatalf("arity mismatch accepted")
	}
	if got := sys.Snapshot().Version; got != v {
		t.Fatalf("rejected update bumped the version: %d -> %d", v, got)
	}
}

// TestAddFactsRejectsDerivedPredicate: facts for a rule-head predicate
// would be stored but never consulted by evaluation — silent data loss —
// so the update is rejected outright.
func TestAddFactsRejectsDerivedPredicate(t *testing.T) {
	sys, err := Load(chainProgram(2))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	v := sys.Snapshot().Version
	if _, _, err := sys.AddFacts([]ast.Atom{ast.NewAtom("path", ast.C("x"), ast.C("y"))}); err == nil {
		t.Fatalf("fact for derived predicate accepted")
	}
	if got := sys.Snapshot().Version; got != v {
		t.Fatalf("rejected update bumped the version: %d -> %d", v, got)
	}
}

// TestAddFactsIdempotentRepush: a batch of pure duplicates publishes no
// new snapshot (version stable, caches stay warm).
func TestAddFactsIdempotentRepush(t *testing.T) {
	sys, err := Load(chainProgram(2))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	snap, added, err := sys.AddFacts([]ast.Atom{edgeFact(0, 1), edgeFact(1, 2)})
	if err != nil {
		t.Fatalf("AddFacts: %v", err)
	}
	if added != 0 || snap.Version != 1 {
		t.Fatalf("duplicate batch: added %d at version %d, want 0 at 1", added, snap.Version)
	}
	if snap != sys.Snapshot() {
		t.Fatalf("duplicate batch published a new snapshot")
	}
}

// TestUnknownConstantDoesNotIntern: a query constant occurring in no rule
// or fact answers empty without growing the shared symbol table — the
// server-facing guard against unbounded interning by remote clients.
func TestUnknownConstantDoesNotIntern(t *testing.T) {
	sys, err := Load(chainProgram(2))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	before := sys.Engine.Syms.Len()
	r, err := sys.Query(ast.NewAtom("path", ast.C("nosuchnode"), ast.V("Y")))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r.Answer.Len() != 0 {
		t.Fatalf("unknown constant returned %d rows", r.Answer.Len())
	}
	if after := sys.Engine.Syms.Len(); after != before {
		t.Fatalf("query interned %d new symbols", after-before)
	}
}

// TestRuleConstantQueryable: constants appearing only in rules (never in
// facts) are pre-interned at load, so querying them still evaluates
// rather than short-circuiting to empty.
func TestRuleConstantQueryable(t *testing.T) {
	sys, err := Load(`
p(X,Y) :- e(X,Y).
p(X,Y) :- p(X,U), e(U,Y).
p(X,root) :- anchor(X).
e(a,b). anchor(a).
`)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	r, err := sys.Query(ast.NewAtom("p", ast.V("X"), ast.C("root")))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r.Answer.Len() != 1 {
		t.Fatalf("rule-constant query = %d rows, want 1", r.Answer.Len())
	}
}

// TestSnapshotSwapRace: N reader goroutines query while a writer swaps
// fact snapshots; every answer must be consistent with exactly one
// snapshot — for a chain of k edges, path(c0, Y) has exactly k rows, all
// with index ≤ k, where k is determined by the version the query pinned.
// Run under -race in the CI race lane.
func TestSnapshotSwapRace(t *testing.T) {
	const (
		initial = 8  // edges in version 1
		swaps   = 40 // each swap appends one edge
		readers = 6
	)
	sys, err := LoadOptions(chainProgram(initial), Options{Workers: 4})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	goal := ast.NewAtom("path", ast.C("c0"), ast.V("Y"))
	// chain length at version v: initial + (v-1).
	lenAt := func(version uint64) int { return initial + int(version) - 1 }

	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	done := make(chan struct{})

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(done)
		for i := 0; i < swaps; i++ {
			snap, _, err := sys.AddFacts([]ast.Atom{edgeFact(initial+i, initial+i+1)})
			if err != nil {
				errs <- fmt.Errorf("AddFacts %d: %v", i, err)
				return
			}
			if want := uint64(i + 2); snap.Version != want {
				errs <- fmt.Errorf("swap %d: version %d, want %d", i, snap.Version, want)
				return
			}
		}
	}()

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r, err := sys.Query(goal)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", g, err)
					return
				}
				want := lenAt(r.Version)
				if r.Answer.Len() != want {
					errs <- fmt.Errorf("reader %d: torn read: %d rows at version %d, want %d",
						g, r.Answer.Len(), r.Version, want)
					return
				}
				// Every reachable node index must exist at this version.
				for _, row := range r.Rows(sys) {
					idx, err := strconv.Atoi(strings.TrimPrefix(row[1], "c"))
					if err != nil || idx < 1 || idx > want {
						errs <- fmt.Errorf("reader %d: row %v inconsistent with version %d",
							g, row, r.Version)
						return
					}
				}
			}
		}(g)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the writer finishes, the final snapshot has every edge.
	final, err := sys.Query(goal)
	if err != nil {
		t.Fatalf("final query: %v", err)
	}
	if final.Answer.Len() != initial+swaps {
		t.Fatalf("final answer = %d rows, want %d", final.Answer.Len(), initial+swaps)
	}
}

// TestQueryCtxTimeout: a per-query deadline kills a long closure promptly
// through the core entry point.
func TestQueryCtxTimeout(t *testing.T) {
	var b strings.Builder
	b.WriteString("p(X,Y) :- e(X,Y).\n")
	b.WriteString("p(X,Y) :- p(X,U), e(U,Y).\n")
	const n = 1000 // cycle: closure would be n² tuples over n rounds
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "e(v%d,v%d).\n", i, (i+1)%n)
	}
	for _, workers := range []int{1, 4} {
		sys, err := LoadOptions(b.String(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
		start := time.Now()
		_, err = sys.QueryCtx(ctx, ast.NewAtom("p", ast.V("X"), ast.V("Y")))
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: err = %v, want DeadlineExceeded", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("workers=%d: timed-out query took %v to return", workers, elapsed)
		}
	}
}
