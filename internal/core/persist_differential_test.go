package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"linrec/internal/ast"
	"linrec/internal/planner"
)

// diskTwin publishes sys-equivalent state to a fresh data directory and
// boots a second system from it, so every relation the twin serves is a
// lazy disk-backed store.
func diskTwin(t *testing.T, src string) (*System, *System) {
	t.Helper()
	mem, err := Load(src)
	if err != nil {
		t.Fatalf("load:\n%s\n%v", src, err)
	}
	dir := t.TempDir()
	if _, err := LoadOptions(src, Options{Persist: openManager(t, dir)}); err != nil {
		t.Fatalf("persistent load:\n%s\n%v", src, err)
	}
	disk, err := LoadOptions(src, Options{Persist: openManager(t, dir)})
	if err != nil {
		t.Fatalf("boot from disk:\n%s\n%v", src, err)
	}
	return mem, disk
}

// comparePlans runs goal against both backends across plan-forcing and
// worker configurations and requires bit-for-bit identical rows
// everywhere; it returns the auto plan kind the disk backend chose.
func comparePlans(t *testing.T, mem, disk *System, goalSrc, src string) planner.Kind {
	t.Helper()
	ctx := context.Background()
	goal := mustAtom(t, goalSrc)
	memSnap, diskSnap := mem.Snapshot(), disk.Snapshot()

	base, err := mem.QueryOn(ctx, memSnap, goal, Options{Strategy: planner.ForceSemiNaive})
	if err != nil {
		t.Fatalf("memory baseline %s:\n%s\n%v", goalSrc, src, err)
	}
	wantRows := base.Rows(mem)

	kind := planner.SemiNaive
	configs := []struct {
		name string
		opts Options
	}{
		{"auto/1", Options{}},
		{"auto/4", Options{Workers: 4}},
		{"seminaive/1", Options{Strategy: planner.ForceSemiNaive}},
		{"decomposed/4", Options{Strategy: planner.ForceDecomposed, Workers: 4}},
	}
	for _, cfg := range configs {
		memRes, err := mem.QueryOn(ctx, memSnap, goal, cfg.opts)
		if err != nil {
			t.Fatalf("memory %s %s:\n%s\n%v", cfg.name, goalSrc, src, err)
		}
		diskRes, err := disk.QueryOn(ctx, diskSnap, goal, cfg.opts)
		if err != nil {
			t.Fatalf("disk %s %s:\n%s\n%v", cfg.name, goalSrc, src, err)
		}
		if memRes.Plan.Kind != diskRes.Plan.Kind {
			t.Fatalf("%s %s: plan diverges across backends: memory %v, disk %v\nprogram:\n%s",
				cfg.name, goalSrc, memRes.Plan.Kind, diskRes.Plan.Kind, src)
		}
		if got := memRes.Rows(mem); !reflect.DeepEqual(got, wantRows) {
			t.Fatalf("memory %s %s diverges from baseline under plan %v:\nprogram:\n%s\nwant %v\ngot  %v",
				cfg.name, goalSrc, memRes.Plan.Kind, src, wantRows, got)
		}
		if got := diskRes.Rows(disk); !reflect.DeepEqual(got, wantRows) {
			t.Fatalf("disk %s %s diverges from baseline under plan %v:\nprogram:\n%s\nwant %v\ngot  %v",
				cfg.name, goalSrc, diskRes.Plan.Kind, src, wantRows, got)
		}
		if cfg.name == "auto/1" {
			kind = diskRes.Plan.Kind
		}
	}
	return kind
}

// TestPersistDifferential is the tentpole's proof harness: across ≥150
// generated programs, every query — auto-planned and plan-forced, at
// one and at four workers — must return rows bit-for-bit identical
// whether the system computes over in-memory relations or over a
// snapshot booted from disk segments.
func TestPersistDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(161803))
	const wantPrograms = 150
	plans := map[planner.Kind]int{}
	nonEmpty := 0

	for attempt := 0; attempt < wantPrograms; attempt++ {
		src := genMagicProgram(rng)
		mem, disk := diskTwin(t, src)

		goals := []string{
			"p(X, Y)",
			fmt.Sprintf("p(c%d, Y)", rng.Intn(8)),
			fmt.Sprintf("p(X, c%d)", rng.Intn(8)),
			fmt.Sprintf("p(c%d, c%d)", rng.Intn(8), rng.Intn(8)),
		}
		for _, goalSrc := range goals {
			plans[comparePlans(t, mem, disk, goalSrc, src)]++
		}
		if res, err := mem.Query(mustAtom(t, "p(X, Y)")); err == nil && res.Answer.Len() > 0 {
			nonEmpty++
		}
	}
	t.Logf("plan kinds compared: %v (non-empty closures: %d)", plans, nonEmpty)
	if plans[planner.SemiNaive] == 0 || plans[planner.MagicSeeded] == 0 {
		t.Fatalf("generator did not exercise both semi-naive and magic-seeded plans: %v", plans)
	}
	if nonEmpty < wantPrograms/3 {
		t.Fatalf("only %d/%d programs had non-empty closures; the harness is not exercising evaluation", nonEmpty, wantPrograms)
	}
}

// TestPersistDifferentialDirected covers the plan kinds the random
// generator reaches rarely — decomposed, separable and bounded — with
// programs whose auto plans are pinned, again comparing both backends.
func TestPersistDifferentialDirected(t *testing.T) {
	cases := []struct {
		name string
		src  string
		goal string
		kind planner.Kind
	}{
		{
			name: "decomposed",
			src: `path(X,Y) :- up(X,Y).
path(X,Y) :- path(X,Z), up(Z,Y).
path(X,Y) :- down(X,Z), path(Z,Y).
up(a,b). up(b,c). up(c,d).
down(b,a). down(c,b).
`,
			goal: "path(X, Y)",
			kind: planner.Decomposed,
		},
		{
			name: "separable",
			src: `path(X,Y) :- up(X,Y).
path(X,Y) :- path(X,Z), up(Z,Y).
path(X,Y) :- down(X,Z), path(Z,Y).
up(a,b). up(b,c). up(c,d).
down(b,a). down(c,b).
`,
			goal: "path(a, Y)",
			kind: planner.Separable,
		},
		{
			name: "bounded",
			src: `p(X,Y) :- seed(X,Y).
p(X,Y) :- p(Y,X), e(X,Y).
seed(a,b). seed(b,c). seed(c,a).
e(a,b). e(b,a). e(b,c). e(c,b).
`,
			goal: "p(X, Y)",
			kind: planner.Bounded,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mem, disk := diskTwin(t, tc.src)
			if got := comparePlans(t, mem, disk, tc.goal, tc.src); got != tc.kind {
				t.Fatalf("auto plan = %v, want %v — the directed case no longer pins its plan kind", got, tc.kind)
			}
		})
	}
}

// TestPersistDifferentialStreaming repeats the comparison through the
// streaming path: rows drained from a disk-booted system's stream must
// match the in-memory system's materialized answer.
func TestPersistDifferentialStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(577215))
	ctx := context.Background()
	for attempt := 0; attempt < 30; attempt++ {
		src := genMagicProgram(rng)
		mem, disk := diskTwin(t, src)
		goalSrc := "p(X, Y)"
		if attempt%2 == 1 {
			goalSrc = fmt.Sprintf("p(c%d, Y)", rng.Intn(8))
		}
		goal := mustAtom(t, goalSrc)

		base, err := mem.QueryOn(ctx, mem.Snapshot(), goal, Options{})
		if err != nil {
			t.Fatalf("memory %s:\n%s\n%v", goalSrc, src, err)
		}
		st, err := disk.QueryStream(ctx, disk.Snapshot(), goal, Options{}, 0)
		if err != nil {
			t.Fatalf("disk stream %s:\n%s\n%v", goalSrc, src, err)
		}
		got := drainStream(t, st)
		if !reflect.DeepEqual(got, base.Rows(mem)) {
			t.Fatalf("streamed disk rows diverge for %s:\nprogram:\n%s\nwant %v\ngot  %v",
				goalSrc, src, base.Rows(mem), got)
		}
	}
}

// TestPersistDifferentialAfterSwaps checks the comparison holds across
// mutation history: both backends apply the same adds and retractions,
// then a restart of the disk side must still agree on every goal.
func TestPersistDifferentialAfterSwaps(t *testing.T) {
	rng := rand.New(rand.NewSource(141421))
	for attempt := 0; attempt < 20; attempt++ {
		src := genMagicProgram(rng)
		mem, err := Load(src)
		if err != nil {
			t.Fatalf("load:\n%s\n%v", src, err)
		}
		dir := t.TempDir()
		disk := func() *System {
			s, err := LoadOptions(src, Options{Persist: openManager(t, dir)})
			if err != nil {
				t.Fatalf("persistent load:\n%s\n%v", src, err)
			}
			return s
		}()

		// Apply the identical batch to both systems.
		batchAdd := []string{
			fmt.Sprintf("e0(c%d,c%d)", rng.Intn(8), rng.Intn(8)),
			fmt.Sprintf("b0(c%d,c%d)", rng.Intn(8), rng.Intn(8)),
		}
		batchDel := []string{fmt.Sprintf("e0(c%d,c%d)", rng.Intn(8), rng.Intn(8))}
		for _, s := range []*System{mem, disk} {
			for _, fs := range batchAdd {
				if _, _, err := s.AddFacts([]ast.Atom{mustAtom(t, fs)}); err != nil {
					t.Fatalf("add %s:\n%s\n%v", fs, src, err)
				}
			}
			for _, fs := range batchDel {
				if _, _, err := s.RemoveFacts([]ast.Atom{mustAtom(t, fs)}); err != nil {
					t.Fatalf("remove %s:\n%s\n%v", fs, src, err)
				}
			}
		}

		// Restart the disk side from the manifest and compare everything.
		rebooted, err := LoadOptions(src, Options{Persist: openManager(t, dir)})
		if err != nil {
			t.Fatalf("reboot:\n%s\n%v", src, err)
		}
		if got, want := rebooted.Snapshot().Version, disk.Snapshot().Version; got != want {
			t.Fatalf("rebooted at version %d, pre-restart served %d", got, want)
		}
		for _, goalSrc := range []string{"p(X, Y)", fmt.Sprintf("p(c%d, Y)", rng.Intn(8))} {
			comparePlans(t, mem, rebooted, goalSrc, src)
		}
	}
}
