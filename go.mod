module linrec

go 1.21
