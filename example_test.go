package linrec_test

import (
	"fmt"
	"log"
	"os"
	"strings"

	"linrec"
)

// ExampleLoad demonstrates the quick-start path: load a program, answer a
// selection query, and see which plan the commutativity analysis licensed.
func ExampleLoad() {
	sys, err := linrec.Load(`
		path(X,Y) :- edge(X,Y).
		path(X,Y) :- path(X,Z), edge(Z,Y).
		edge(a,b). edge(b,c). edge(c,d).
		?- path(b, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	results, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range results[0].Rows(sys) {
		fmt.Printf("path(%s)\n", strings.Join(row, ","))
	}
	// Output:
	// path(b,c)
	// path(b,d)
}

// ExampleSystem_Query demonstrates the bound-query fast path: a goal
// that binds an argument column is answered by magic-seeded evaluation —
// a frontier grown from the constant — instead of closing the whole
// predicate and filtering.  The single recursive rule here has no
// separable partner, so before the MagicSeeded plan kind this query paid
// for the full closure of buys.
func ExampleSystem_Query() {
	sys, err := linrec.Load(`
		buys(X,Y) :- trusts(X,Y).
		buys(X,Y) :- knows(X,Z), buys(Z,Y).
		knows(ann,bob). knows(bob,cho).
		trusts(bob,figs). trusts(cho,tea).
	`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Query(linrec.NewAtom("buys", linrec.C("ann"), linrec.V("Y")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", res.Plan.Kind)
	for _, row := range res.Rows(sys) {
		fmt.Printf("buys(%s)\n", strings.Join(row, ","))
	}
	// Output:
	// plan: magic-seeded evaluation (σ-bound frontier)
	// buys(ann,figs)
	// buys(ann,tea)
}

// ExampleOpenStorage demonstrates durable snapshots: a system attached
// to a storage directory publishes every snapshot swap as immutable
// on-disk segments, and a later process pointed at the same directory
// recovers the newest one — including facts pushed after boot — without
// re-parsing the program's fact list.
func ExampleOpenStorage() {
	dir, err := os.MkdirTemp("", "linrec-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	program := `
		path(X,Y) :- edge(X,Y).
		path(X,Y) :- path(X,Z), edge(Z,Y).
		edge(a,b). edge(b,c).
	`

	// First process: open storage, load, push a fact.  The swap
	// publishes durably before it becomes visible.
	store, err := linrec.OpenStorage(dir)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := linrec.LoadOptions(program, linrec.Options{Persist: store})
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := sys.AddFacts([]linrec.Atom{linrec.NewAtom("edge", linrec.C("c"), linrec.C("d"))}); err != nil {
		log.Fatal(err)
	}

	// "Reboot": a fresh manager over the same directory recovers the
	// last published snapshot, so the pushed edge(c,d) survives.
	store2, err := linrec.OpenStorage(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered:", store2.HasSnapshot())
	sys2, err := linrec.LoadOptions(program, linrec.Options{Persist: store2})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys2.Query(linrec.NewAtom("path", linrec.C("a"), linrec.V("Y")))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows(sys2) {
		fmt.Printf("path(%s)\n", strings.Join(row, ","))
	}
	// Output:
	// recovered: true
	// path(a,b)
	// path(a,c)
	// path(a,d)
}

// ExampleSystem_Analyze inspects the paper's analysis: the two transitive-
// closure forms commute, so the closure decomposes.
func ExampleSystem_Analyze() {
	sys, err := linrec.Load(`
		path(X,Y) :- up(X,Y).
		path(X,Y) :- path(X,Z), up(Z,Y).
		path(X,Y) :- down(X,Z), path(Z,Y).
		up(a,b).
	`)
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.Analyze("path")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rules:", len(a.Ops))
	fmt.Println("pair commutes:", a.Commutes[[2]int{0, 1}] == linrec.Commute)
	fmt.Println("plan:", a.Choose(nil).Kind)
	// Output:
	// rules: 2
	// pair commutes: true
	// plan: decomposed closure (B*C*)
}
