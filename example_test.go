package linrec_test

import (
	"fmt"
	"log"
	"strings"

	"linrec"
)

// ExampleLoad demonstrates the quick-start path: load a program, answer a
// selection query, and see which plan the commutativity analysis licensed.
func ExampleLoad() {
	sys, err := linrec.Load(`
		path(X,Y) :- edge(X,Y).
		path(X,Y) :- path(X,Z), edge(Z,Y).
		edge(a,b). edge(b,c). edge(c,d).
		?- path(b, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	results, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range results[0].Rows(sys) {
		fmt.Printf("path(%s)\n", strings.Join(row, ","))
	}
	// Output:
	// path(b,c)
	// path(b,d)
}

// ExampleSystem_Analyze inspects the paper's analysis: the two transitive-
// closure forms commute, so the closure decomposes.
func ExampleSystem_Analyze() {
	sys, err := linrec.Load(`
		path(X,Y) :- up(X,Y).
		path(X,Y) :- path(X,Z), up(Z,Y).
		path(X,Y) :- down(X,Z), path(Z,Y).
		up(a,b).
	`)
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.Analyze("path")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rules:", len(a.Ops))
	fmt.Println("pair commutes:", a.Commutes[[2]int{0, 1}] == linrec.Commute)
	fmt.Println("plan:", a.Choose(nil).Kind)
	// Output:
	// rules: 2
	// pair commutes: true
	// plan: decomposed closure (B*C*)
}
