// Command lrbench regenerates the paper's evaluation artifacts: every
// figure (a-graph), worked example, algorithm comparison and complexity
// claim, printed as tables and reports.
//
// Usage:
//
//	lrbench              # run every experiment
//	lrbench -exp F3      # run one experiment by id
//	lrbench -list        # list experiment ids and titles
//	lrbench -json        # run the substrate benchmark, write BENCH_eval.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"linrec/internal/experiments"
)

func main() {
	expID := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "run the substrate benchmark and write BENCH_eval.json")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	if *jsonOut {
		rep, err := experiments.PTCJSONReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: benchmark failed: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile("BENCH_eval.json", data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote BENCH_eval.json (speedup at 8 workers: %.2fx)\n", rep.SpeedupAt8)
		return
	}

	run := experiments.All()
	if *expID != "" {
		e, ok := experiments.Lookup(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "lrbench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		run = []experiments.Experiment{e}
	}

	for i, e := range run {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
