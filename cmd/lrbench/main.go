// Command lrbench regenerates the paper's evaluation artifacts: every
// figure (a-graph), worked example, algorithm comparison and complexity
// claim, printed as tables and reports.
//
// Usage:
//
//	lrbench              # run every experiment
//	lrbench -exp F3      # run one experiment by id
//	lrbench -list        # list experiment ids and titles
//	lrbench -json        # run the substrate benchmark, write BENCH_eval.json
//	lrbench -server      # run the linrecd server lane, merge into BENCH_eval.json
//	lrbench -magic       # run the bound-query magic and multi-bound adornment lanes, merge into BENCH_eval.json
//	lrbench -cache       # run the result-cache lane, merge into BENCH_eval.json
//	lrbench -incremental # run the differential cache-maintenance lane, merge into BENCH_eval.json
//	lrbench -overhead    # run the tracing-overhead lane, merge into BENCH_eval.json
//	lrbench -streaming   # run the streaming early-termination lane, merge into BENCH_eval.json
//	lrbench -persist     # run the durable-storage restart lane, merge into BENCH_eval.json
//	lrbench -paging      # run the out-of-core budgeted-residency lane, merge into BENCH_eval.json
//	lrbench -gate        # short-mode CI gate: fail if any speedup drops below its floor
//	lrbench -gate -gate-out gate_report.json   # also write the gate verdicts as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"linrec/internal/experiments"
)

// mergeBenchFile folds key: value into BENCH_eval.json, preserving every
// other top-level field (so the substrate and server lanes compose in
// either order).
func mergeBenchFile(key string, value any) error {
	doc := map[string]any{}
	data, err := os.ReadFile("BENCH_eval.json")
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing BENCH_eval.json: %w", err)
		}
	case os.IsNotExist(err):
		// First run: start an empty document.
	default:
		// Any other read failure must not silently drop the other lanes.
		return fmt.Errorf("existing BENCH_eval.json: %w", err)
	}
	raw, err := json.Marshal(value)
	if err != nil {
		return err
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return err
	}
	if key == "" {
		m, ok := v.(map[string]any)
		if !ok {
			return fmt.Errorf("top-level bench report must be an object")
		}
		for k, val := range m {
			doc[k] = val
		}
	} else {
		doc[key] = v
	}
	data, err = json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_eval.json", append(data, '\n'), 0o644)
}

func main() {
	expID := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "run the substrate benchmark and merge it into BENCH_eval.json")
	serverOut := flag.Bool("server", false, "run the linrecd server throughput/latency lane and merge it into BENCH_eval.json")
	magicOut := flag.Bool("magic", false, "run the bound-query magic-seeded lane and merge it into BENCH_eval.json")
	cacheOut := flag.Bool("cache", false, "run the goal-level result-cache lane and merge it into BENCH_eval.json")
	incOut := flag.Bool("incremental", false, "run the differential cache-maintenance lane and merge it into BENCH_eval.json")
	overheadOut := flag.Bool("overhead", false, "run the tracing-overhead lane and merge it into BENCH_eval.json")
	streamingOut := flag.Bool("streaming", false, "run the streaming early-termination lane and merge it into BENCH_eval.json")
	persistOut := flag.Bool("persist", false, "run the durable-storage restart lane and merge it into BENCH_eval.json")
	pagingOut := flag.Bool("paging", false, "run the out-of-core budgeted-residency lane and merge it into BENCH_eval.json")
	gate := flag.Bool("gate", false, "short-mode CI gate: run the headline lanes at table size and exit nonzero if any speedup is below its floor")
	gateOut := flag.String("gate-out", "", "with -gate, also write the gate report as JSON to this file (for CI artifacts)")
	minParallel := flag.Float64("min-parallel", experiments.DefaultGateFloors.Parallel, "gate floor for the parallel-substrate speedup at 8 workers (0 disables)")
	minMagic := flag.Float64("min-magic", experiments.DefaultGateFloors.Magic, "gate floor for the magic-seeded bound-query speedup (0 disables)")
	minMagicMulti := flag.Float64("min-magic-multi", experiments.DefaultGateFloors.MagicMulti, "gate floor for the multi-bound magic-adornment speedup (0 disables)")
	minCache := flag.Float64("min-cache", experiments.DefaultGateFloors.Cache, "gate floor for the result-cache hit speedup (0 disables)")
	minIncremental := flag.Float64("min-incremental", experiments.DefaultGateFloors.Incremental, "gate floor for the maintained-vs-rebuild update speedup (0 disables)")
	minStreaming := flag.Float64("min-streaming", experiments.DefaultGateFloors.Streaming, "gate floor for the limit=1 early-termination speedup over the full fixpoint (0 disables)")
	minPersist := flag.Float64("min-persist", experiments.DefaultGateFloors.Persist, "gate floor for the manifest-recovery speedup over a rebuild-from-facts restart (0 disables)")
	minPaging := flag.Float64("min-paging", experiments.DefaultGateFloors.Paging, "gate floor for the out-of-core paging factor (dataset bytes over peak tracked residency; 0 disables)")
	maxTraceOverhead := flag.Float64("max-trace-overhead", experiments.DefaultGateFloors.TracingOverheadPct, "gate ceiling, in percent, for the tracing-disabled closure regression (0 disables)")
	flag.Parse()

	if *gate {
		rep := experiments.RunGate(experiments.GateFloors{
			Parallel: *minParallel, Magic: *minMagic, MagicMulti: *minMagicMulti, Cache: *minCache,
			Incremental: *minIncremental, Streaming: *minStreaming, Persist: *minPersist,
			Paging: *minPaging, TracingOverheadPct: *maxTraceOverhead,
		}, os.Stdout)
		if *gateOut != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err == nil {
				err = os.WriteFile(*gateOut, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "lrbench: writing gate report: %v\n", err)
				os.Exit(1)
			}
		}
		if !rep.Pass {
			fmt.Fprintln(os.Stderr, "lrbench: bench gate FAILED")
			os.Exit(1)
		}
		fmt.Println("lrbench: bench gate ok")
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	if *jsonOut {
		rep, err := experiments.PTCJSONReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeBenchFile("", rep); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote BENCH_eval.json (speedup at 8 workers: %.2fx)\n", rep.SpeedupAt8)
	}

	if *serverOut {
		rep, err := experiments.ServerJSONReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: server benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeBenchFile("server", rep); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged server lane into BENCH_eval.json (%d clients: %.0f qps, p50 %.2fms, p99 %.2fms, %d swaps, 0 failures)\n",
			rep.Clients, rep.ThroughputQPS, rep.P50MS, rep.P99MS, rep.SwapsMidRun)
	}

	if *magicOut {
		rep, err := experiments.MagicJSONReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: magic benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeBenchFile("magic", rep); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged magic lane into BENCH_eval.json (bound query on %s: %.0fx over closure+filter, %d answer rows)\n",
			rep.Source, rep.Speedup, rep.Results[0].AnswerRows)

		multi, err := experiments.MagicMultiJSONReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: magic-multi benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeBenchFile("magic_multi", multi); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged magic_multi lane into BENCH_eval.json (multi-bound adornments: %.0fx over closure+filter)\n",
			multi.Speedup)
	}

	if *cacheOut {
		rep, err := experiments.CacheJSONReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: cache benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeBenchFile("result_cache", rep); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged result-cache lane into BENCH_eval.json (cached hit ≥ %.0fx faster than cold, retraction invalidates: %v)\n",
			rep.Speedup, rep.RetractionInvalidates)
	}

	if *incOut {
		rep, err := experiments.IncrementalJSONReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: incremental benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeBenchFile("incremental_tc", rep); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged incremental lane into BENCH_eval.json (maintained update+query %.0fx faster than purge-and-rebuild, %d upgrades, differential ok: %v)\n",
			rep.Speedup, rep.Upgrades, rep.DifferentialOK)
	}

	if *overheadOut {
		rep, err := experiments.TracingOverheadJSONReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: overhead benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeBenchFile("tracing_overhead", rep); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged tracing-overhead lane into BENCH_eval.json (disabled %+.2f%%, enabled %+.2f%% over the no-context closure, %d rounds traced)\n",
			rep.OverheadOffPct, rep.OverheadOnPct, rep.TraceRounds)
	}

	if *streamingOut {
		rep, err := experiments.StreamingJSONReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: streaming benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeBenchFile("streaming_tc", rep); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged streaming lane into BENCH_eval.json (limit=1 stream %.0fx faster than full fixpoint: %d vs %d rounds, subset ok: %v)\n",
			rep.Speedup, rep.StreamRounds, rep.FullRounds, rep.SubsetOK)
	}

	if *persistOut {
		rep, err := experiments.PersistJSONReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: persist benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeBenchFile("persist_tc", rep); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged persist lane into BENCH_eval.json (manifest recovery %.0fx faster than rebuild-from-facts over %d edges, %d lazy loads after first query, differential ok: %v)\n",
			rep.Speedup, rep.Edges, rep.LazyLoads, rep.DifferentialOK)
	}

	if *pagingOut {
		rep, err := experiments.PagingJSONReport()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: paging benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeBenchFile("paging_tc", rep); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged paging lane into BENCH_eval.json (answered %d bytes under a %d-byte budget, paging factor %.1fx, %d evictions, differential ok: %v)\n",
			rep.DatasetBytes, rep.BudgetBytes, rep.PagingFactor, rep.Evictions, rep.DifferentialOK)
	}

	if *jsonOut || *serverOut || *magicOut || *cacheOut || *incOut || *overheadOut || *streamingOut || *persistOut || *pagingOut {
		return
	}

	run := experiments.All()
	if *expID != "" {
		e, ok := experiments.Lookup(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "lrbench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		run = []experiments.Experiment{e}
	}

	for i, e := range run {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lrbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
