// Command commute analyzes a Datalog program with the paper's machinery:
// for every linear recursive predicate it prints the a-graph variable
// classification, commutativity verdicts per rule pair, Naughton
// separability, recursively redundant predicates and the evaluation plan
// the planner would choose.  With queries present ("?- p(a, X)."), it also
// answers them and reports the plan and statistics used.
//
// Usage:
//
//	commute program.dl
//	commute -          # read from stdin
//	commute -q program.dl   # answer the program's queries too
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"linrec/internal/core"
)

// emitDot prints one digraph per recursive rule of every recursive
// predicate.
func emitDot(sys *core.System) error {
	for _, pred := range sys.Prog.IDBPreds() {
		recursive := false
		for _, r := range sys.Prog.RulesFor(pred) {
			if r.IsRecursiveWith(pred) {
				recursive = true
			}
		}
		if !recursive {
			continue
		}
		a, err := sys.Analyze(pred)
		if err != nil {
			return err
		}
		for i, g := range a.Graphs {
			fmt.Print(g.DOT(fmt.Sprintf("%s_rule%d", pred, i+1)))
		}
	}
	return nil
}

func main() {
	answer := flag.Bool("q", false, "answer the program's ?- queries")
	dot := flag.Bool("dot", false, "emit Graphviz dot for each recursive rule's a-graph instead of the report")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: commute [-q] <program.dl | ->")
		os.Exit(2)
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "commute: %v\n", err)
		os.Exit(1)
	}

	sys, err := core.Load(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "commute: %v\n", err)
		os.Exit(1)
	}

	if *dot {
		if err := emitDot(sys); err != nil {
			fmt.Fprintf(os.Stderr, "commute: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rep, err := sys.Report()
	if err != nil {
		fmt.Fprintf(os.Stderr, "commute: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep)

	if *answer && len(sys.Prog.Queries) > 0 {
		results, err := sys.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "commute: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("\n?- %v.  [%v; %v]\n", r.Query, r.Plan.Kind, r.Stats)
			for _, row := range r.Rows(sys) {
				fmt.Printf("  %s(%s)\n", r.Query.Pred, strings.Join(row, ","))
			}
		}
	}
}
