// Command doclint is the documentation gate of the CI docs lane: it
// walks every Go package of the module and fails (exit 1) unless the
// godoc surface is complete and well-formed.
//
// Enforced rules:
//
//  1. Every package has exactly one package doc comment (a comment block
//     immediately above a package clause), and it starts with
//     "Package <name> " — or "Command <name> " for main packages.  A
//     second file with a package-clause doc comment is an error: go/doc
//     concatenates them all, garbling the rendered package page.  Detach
//     auxiliary file headers with a blank line before the package clause.
//  2. Every exported top-level declaration — funcs, methods on exported
//     types, types, consts, vars — carries a doc comment.  For grouped
//     declarations a doc comment on the group covers its members.
//
// Usage:
//
//	doclint [dir]    # default: the current directory, recursively
//
// Test files (*_test.go) and testdata/vendored trees are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// finding is one rule violation at a position.
type finding struct {
	pos token.Position
	msg string
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = strings.TrimSuffix(os.Args[1], "/...")
	}
	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	var all []finding
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].pos, all[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, f := range all {
		fmt.Printf("%s:%d: %s\n", f.pos.Filename, f.pos.Line, f.msg)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}

// packageDirs returns every directory under root holding at least one
// non-test Go file, skipping hidden, testdata and vendor trees.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// lintDir checks one package directory.
func lintDir(dir string) ([]finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []finding
	for name, pkg := range pkgs {
		out = append(out, lintPackage(fset, name, pkg)...)
	}
	return out, nil
}

// lintPackage applies both rules to one parsed package.
func lintPackage(fset *token.FileSet, name string, pkg *ast.Package) []finding {
	var out []finding
	want := "Package " + name + " "
	if name == "main" {
		want = "Command "
	}

	// Rule 1: exactly one well-formed package doc comment.
	var docFiles []string
	var files []string
	for f := range pkg.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, fname := range files {
		file := pkg.Files[fname]
		if file.Doc == nil {
			continue
		}
		docFiles = append(docFiles, fname)
		if text := file.Doc.Text(); !strings.HasPrefix(text, want) {
			out = append(out, finding{
				pos: fset.Position(file.Doc.Pos()),
				msg: fmt.Sprintf("package comment should start with %q (file headers that are not the package doc need a blank line before the package clause)", strings.TrimSpace(want)),
			})
		}
	}
	if len(docFiles) == 0 {
		for _, fname := range files {
			out = append(out, finding{
				pos: fset.Position(pkg.Files[fname].Package),
				msg: fmt.Sprintf("package %s has no package doc comment", name),
			})
			break
		}
	} else if len(docFiles) > 1 {
		for _, fname := range docFiles[1:] {
			out = append(out, finding{
				pos: fset.Position(pkg.Files[fname].Doc.Pos()),
				msg: fmt.Sprintf("duplicate package doc comment (package doc lives in %s); go/doc concatenates them", filepath.Base(docFiles[0])),
			})
		}
	}

	// Rule 2: exported declarations are documented.
	for _, fname := range files {
		for _, decl := range pkg.Files[fname].Decls {
			out = append(out, lintDecl(fset, decl)...)
		}
	}
	return out
}

// lintDecl reports undocumented exported declarations.
func lintDecl(fset *token.FileSet, decl ast.Decl) []finding {
	var out []finding
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		if recv, isMethod := receiverType(d); isMethod && !ast.IsExported(recv) {
			return nil // method on an unexported type: not godoc surface
		}
		out = append(out, finding{
			pos: fset.Position(d.Pos()),
			msg: fmt.Sprintf("exported %s %s has no doc comment", funcKind(d), d.Name.Name),
		})
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					out = append(out, finding{
						pos: fset.Position(s.Pos()),
						msg: fmt.Sprintf("exported type %s has no doc comment", s.Name.Name),
					})
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						out = append(out, finding{
							pos: fset.Position(s.Pos()),
							msg: fmt.Sprintf("exported %s %s has no doc comment", declKind(d.Tok), n.Name),
						})
						break
					}
				}
			}
		}
	}
	return out
}

// receiverType returns the base type name of a method receiver.
func receiverType(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name, true
		default:
			return "", true
		}
	}
}

// funcKind names a FuncDecl for messages.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// declKind names a GenDecl token for messages.
func declKind(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	default:
		return "declaration"
	}
}
