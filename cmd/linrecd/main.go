// Command linrecd is the linrec query server: it loads a Datalog program
// once, keeps the compiled analyses and plans warm, and serves
// linear-recursion queries to many concurrent clients over HTTP+JSON.
//
//	linrecd -program examples/server/paths.dl -addr 127.0.0.1:8080
//	linrecd -gen tree:240001 -workers 8        # synthetic 240k-edge TC workload
//	linrecd -program p.dl -data-dir /var/lib/linrec  # durable snapshots, recovered on restart
//
// Endpoints:
//
//	POST /v1/query  {"query":"path(a,Y)","timeout_ms":1000,"workers":2}
//	POST /v1/facts  {"facts":"edge(c,d). edge(d,e)."}   (snapshot swap)
//	GET  /v1/stats
//	GET  /healthz
//
// Facts pushed while queries are in flight swap in atomically
// (copy-on-write snapshots); per-query timeouts cancel the engine's
// closure rounds; a global worker budget with a bounded admission queue
// sheds overload with 429/503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"linrec/internal/core"
	"linrec/internal/segment"
	"linrec/internal/server"
	"linrec/internal/workload"
)

// genProgram is the rule set of the synthetic -gen workload: transitive
// closure with a commuting left/right-linear pair, so selection queries
// run the paper's separable algorithm instead of a full closure.
const genProgram = `
path(X,Y) :- edge(X,Y).
path(X,Y) :- path(X,U), edge(U,Y).
path(X,Y) :- edge(X,U), path(U,Y).
`

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		program      = flag.String("program", "", "Datalog program file (rules + facts)")
		gen          = flag.String("gen", "", "synthetic workload instead of -program: tree:<nodes>[:seed] generates a random recursive tree under 'edge' with transitive-closure rules over 'path'")
		workers      = flag.Int("workers", 0, "global closure-worker budget (0 = GOMAXPROCS)")
		queryWorkers = flag.Int("query-workers", 1, "default per-query worker grant")
		queue        = flag.Int("queue", 0, "admission queue bound (0 = 4x workers)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-query timeout")
		maxTimeout   = flag.Duration("max-timeout", 120*time.Second, "cap on requested per-query timeouts")
		maxRows      = flag.Int("max-rows", 1_000_000, "reject answers larger than this with 413 (0 = unlimited)")
		cacheRows    = flag.Int("cache-rows", 0, "goal-level result cache capacity in total cached answer rows (0 = engine default, negative disables)")
		dataDir      = flag.String("data-dir", "", "durable storage directory: snapshots persist as on-disk segments and the newest one is recovered at boot instead of reloading -program facts")
		memBudget    = flag.String("mem-budget", "", "out-of-core mode (requires -data-dir): cap heap spent on segment probe indexes at this many bytes (suffixes k/m/g), evicting cold segments back to mmap-only so the database may exceed resident memory")
		compactEvery = flag.Duration("compact-every", 30*time.Second, "background compaction interval for on-disk delta chains (requires -data-dir; 0 disables)")
		portFile     = flag.String("port-file", "", "write the bound listen address to this file (for scripts wrapping -addr :0)")
		withPprof    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU, heap, goroutine profiles)")
		slowQueryMS  = flag.Int64("slow-query-ms", 0, "log the full trace of any query slower than this many milliseconds (0 = off)")
	)
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	budgetBytes, err := parseSize(*memBudget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linrecd: -mem-budget: %v\n", err)
		os.Exit(1)
	}
	if budgetBytes > 0 && *dataDir == "" {
		fmt.Fprintf(os.Stderr, "linrecd: -mem-budget requires -data-dir\n")
		os.Exit(1)
	}
	sys, desc, mgr, err := loadSystem(*program, *gen, *dataDir, *cacheRows, budgetBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linrecd: %v\n", err)
		os.Exit(1)
	}
	if mgr != nil {
		st := mgr.Stats()
		log.Info("durable storage attached", "dir", mgr.Dir(),
			"recovered", st.Recovered, "generation", st.Generation,
			"snapshot_version", st.SnapshotVersion,
			"preds", st.RecoveredPreds, "rows", st.RecoveredRows,
			"boot_ms", st.BootMillis, "mem_budget", budgetBytes)
		if *compactEvery > 0 {
			stopCompactor := mgr.StartCompactor(*compactEvery)
			defer stopCompactor()
		}
	}

	srv := server.New(server.Config{
		System:         sys,
		Persist:        mgr,
		TotalWorkers:   *workers,
		QueryWorkers:   *queryWorkers,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxRows:        *maxRows,
		Logger:         log,
		SlowQuery:      time.Duration(*slowQueryMS) * time.Millisecond,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linrecd: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "linrecd: port file: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("linrecd: serving %s on http://%s\n", desc, bound)

	handler := srv.Handler()
	if *withPprof {
		// Opt-in only: the profiling endpoints expose stacks and heap
		// contents, so they never mount by default.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}

	hs := &http.Server{
		Handler: handler,
		// Slow or stalled clients must not pin server resources: header
		// and body reads are bounded, idle keep-alives are reaped.  No
		// WriteTimeout — large streamed answers may take a while, and the
		// worker budget is released before serialization starts.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "linrecd: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("linrecd: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(shCtx)
	}
}

// loadSystem builds the served System from -program or -gen.  With a
// data directory the system runs on durable segment storage: the newest
// published snapshot is recovered when one exists (the -program facts
// and -gen generation are skipped — the disk is the source of truth),
// otherwise the initial snapshot is published before serving starts.
func loadSystem(program, gen, dataDir string, cacheRows int, budgetBytes int64) (*core.System, string, *segment.Manager, error) {
	opts := core.Options{ResultCacheRows: cacheRows}
	var mgr *segment.Manager
	if dataDir != "" {
		var err error
		if mgr, err = segment.Open(dataDir); err != nil {
			return nil, "", nil, err
		}
		// The budget must attach before Boot so recovery installs
		// mmap-resident lazy stores instead of materializing everything.
		mgr.SetMemBudget(budgetBytes)
	}
	switch {
	case program != "" && gen != "":
		return nil, "", nil, fmt.Errorf("-program and -gen are mutually exclusive")
	case program != "":
		src, err := os.ReadFile(program)
		if err != nil {
			return nil, "", nil, err
		}
		if mgr != nil {
			opts.Persist = mgr
		}
		sys, err := core.LoadOptions(string(src), opts)
		if err != nil {
			return nil, "", nil, fmt.Errorf("%s: %w", program, err)
		}
		return sys, program, mgr, nil
	case gen != "":
		nodes, seed, err := parseGen(gen)
		if err != nil {
			return nil, "", nil, err
		}
		desc := fmt.Sprintf("synthetic tree TC (%d edges)", nodes-1)
		if mgr != nil && mgr.HasSnapshot() {
			// A previous run already generated and published the workload:
			// recover it instead of regenerating, preserving any facts
			// pushed since.
			opts.Persist = mgr
			sys, err := core.LoadOptions(genProgram, opts)
			if err != nil {
				return nil, "", nil, err
			}
			return sys, desc + " [recovered]", mgr, nil
		}
		sys, err := core.LoadOptions(genProgram, opts)
		if err != nil {
			return nil, "", nil, err
		}
		// Bulk-load the generated edges straight into the initial snapshot;
		// the System is not shared yet, so this pre-serve mutation is safe.
		// Persistence attaches only afterwards so the published initial
		// snapshot includes the generated edges.
		workload.RandomTree(sys.Engine, sys.DB(), "edge", nodes, seed)
		if mgr != nil {
			snap := sys.Snapshot()
			if err := mgr.Publish(snap.Version, snap.DB, sys.Engine.Syms); err != nil {
				return nil, "", nil, fmt.Errorf("publishing generated snapshot: %w", err)
			}
			sys.Opts.Persist = mgr
		}
		return sys, desc, mgr, nil
	default:
		return nil, "", nil, fmt.Errorf("one of -program or -gen is required")
	}
}

// parseSize parses a human-friendly byte size: a plain integer, or one
// with a k/m/g suffix (powers of 1024, case-insensitive, optional
// trailing 'b').  Empty means 0 (unbudgeted).
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	s = strings.TrimSuffix(s, "b")
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 64m, 512k, 1g)", s)
	}
	return n * mult, nil
}

// parseGen parses "tree:<nodes>[:seed]".
func parseGen(gen string) (nodes int, seed int64, err error) {
	parts := strings.Split(gen, ":")
	if parts[0] != "tree" || len(parts) < 2 || len(parts) > 3 {
		return 0, 0, fmt.Errorf("bad -gen %q (want tree:<nodes>[:seed])", gen)
	}
	nodes, err = strconv.Atoi(parts[1])
	if err != nil || nodes < 2 {
		return 0, 0, fmt.Errorf("bad -gen node count %q", parts[1])
	}
	seed = 47
	if len(parts) == 3 {
		seed, err = strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad -gen seed %q", parts[2])
		}
	}
	return nodes, seed, nil
}
