// Command lrload drives concurrent query traffic against a running
// linrecd and reports throughput and latency percentiles.
//
//	lrload -addr 127.0.0.1:8080 -query "path(a, Y)" -clients 64 -duration 10s
//	lrload -addr 127.0.0.1:8080 -rate 500 -duration 10s     # open loop, 500 qps
//	lrload -addr 127.0.0.1:8080 -smoke                      # CI smoke: full add→query→retract→query lifecycle
//
// With -range N and a query containing %d, each request draws a distinct
// goal (round-robin over path(t0,Y) … path(tN-1,Y)-style pools).  With
// -facts-every D the generator also pushes a fresh fact batch on that
// period, exercising snapshot swaps under load.
//
// Every run ends by fetching /v1/stats and reporting the server's result
// cache hit ratio; -smoke additionally fails the run if the server
// answered any request with a 500 (internal evaluation error).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"linrec/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "linrecd address (host:port or full URL)")
		query      = flag.String("query", "path(a, Y)", "goal atom; may contain %d with -range")
		rangeN     = flag.Int("range", 0, "expand %d in -query over [0, range) as a round-robin pool")
		clients    = flag.Int("clients", 8, "closed-loop client count (and in-flight cap for -rate)")
		rate       = flag.Float64("rate", 0, "open-loop offered load in requests/sec (0 = closed loop)")
		duration   = flag.Duration("duration", 5*time.Second, "run length")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-query timeout")
		workers    = flag.Int("workers", 0, "per-query worker grant to request (0 = server default)")
		factsEvery = flag.Duration("facts-every", 0, "push a fresh fact batch on this period during the run (0 = never)")
		smoke      = flag.Bool("smoke", false, "smoke test: health check, then the full fact lifecycle — query, add, re-query, retract, re-query — and fail on any server 500")
		jsonOut    = flag.Bool("json", false, "print the report as JSON")
	)
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	if *smoke {
		if err := runSmoke(base, *query, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "lrload: smoke failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("lrload: smoke ok")
		return
	}

	queries := []string{*query}
	if *rangeN > 0 && strings.Contains(*query, "%d") {
		queries = make([]string, *rangeN)
		for i := range queries {
			queries[i] = fmt.Sprintf(*query, i)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *factsEvery > 0 {
		go pushFacts(ctx, base, *factsEvery)
	}

	rep, err := server.RunLoad(ctx, server.LoadOptions{
		BaseURL:  base,
		Queries:  queries,
		Clients:  *clients,
		Rate:     *rate,
		Duration: *duration,
		Timeout:  *timeout,
		Workers:  *workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrload: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		data, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(data))
	} else {
		fmt.Printf("requests %d (failures %d, shed %d, dropped %d), %.0f rows\n",
			rep.Requests, rep.Failures, rep.Shed, rep.Dropped, float64(rep.Rows))
		fmt.Printf("throughput %.1f qps over %.2fs\n", rep.Throughput, rep.ElapsedS)
		fmt.Printf("latency p50 %.2fms  p99 %.2fms  max %.2fms\n", rep.P50MS, rep.P99MS, rep.MaxMS)
	}
	reportCacheRatio(base, *timeout)
	if rep.Failures > 0 {
		os.Exit(1)
	}
}

// reportCacheRatio prints the server-side result-cache hit ratio from
// /v1/stats; a stats fetch failure is reported but never fails the run.
func reportCacheRatio(base string, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	st, err := server.FetchStats(ctx, &http.Client{Timeout: timeout}, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrload: stats fetch: %v\n", err)
		return
	}
	fmt.Printf("server result cache: %.1f%% hit ratio (%d entries, %d rows cached, %d invalidated by swaps)\n",
		100*st.ResultCache.HitRatio(), st.ResultCache.Entries, st.ResultCache.Rows, st.ResultCache.Invalidated)
}

// pushFacts posts one fresh-node edge per period until ctx fires — each
// post forces a copy-on-write snapshot swap on the server.
func pushFacts(ctx context.Context, base string, every time.Duration) {
	hc := &http.Client{Timeout: 30 * time.Second}
	t := time.NewTicker(every)
	defer t.Stop()
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			facts := fmt.Sprintf("edge(lrload_%d_a, lrload_%d_b).", i, i)
			if _, err := server.PostFacts(ctx, hc, base, facts); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "lrload: facts push: %v\n", err)
			}
		}
	}
}

// runSmoke checks the full fact lifecycle once: health, a query, a fact
// batch referencing fresh nodes, a second query that must see a strictly
// newer snapshot, a retraction of that same batch, and a final query
// whose answer must shrink back to the original — then verifies via
// /v1/stats that the server answered no request with a 500 and that the
// per-plan-kind counters actually accounted for the plans the smoke
// exercised (a stats-accounting regression must not pass smoke
// silently).  A full-closure goal warmed before the swaps additionally
// proves differential maintenance end to end: both the addition and the
// retraction must upgrade the cached fixpoint in place
// (result_cache.upgrades advances; the final closure query is a hit with
// the original row count), not invalidate it.  The streaming serving
// modes are smoked too: an exists probe and a limit=10 query must serve
// a valid subset of the full answer and advance the
// limited/exists/early-termination counters in both /v1/stats and
// /metrics.
func runSmoke(base, query string, timeout time.Duration) error {
	hc := &http.Client{Timeout: timeout + 5*time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 4*timeout+20*time.Second)
	defer cancel()

	resp, err := hc.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	st0, err := server.FetchStats(ctx, hc, base)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	m0, err := server.FetchMetrics(ctx, hc, base)
	if err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	// Every plan string a successful query reports must show up as a
	// per-plan-kind counter increment by the end of the smoke.
	planned := map[string]int64{}

	before, err := server.QueryOnce(ctx, hc, base, query, timeout, 0)
	if err != nil {
		return fmt.Errorf("query %q: %w", query, err)
	}
	planned[before.Plan]++
	fmt.Printf("lrload: %q -> %d rows at snapshot %d (%s)\n",
		query, before.RowCount, before.SnapshotVersion, before.Plan)

	// Warm an unbound full-closure entry before the swaps: its cached
	// fixpoint is the maintainable kind, so the add and retract below must
	// UPGRADE it in place (result_cache.upgrades advances) rather than
	// purge it — the differential-maintenance half of the lifecycle.
	// Requesting the trace here, while the goal is still cold, means the
	// query genuinely evaluates (a cache hit would carry no phases — the
	// server normalizes the worker grant by plan before keying the cache,
	// so asking for more workers does not force a re-evaluation) and must
	// come back with per-round deltas whose row accounting reproduces the
	// closure row count exactly.
	const closureGoal = "path(X, Y)"
	warm, err := server.QueryTraced(ctx, hc, base, closureGoal, timeout, 0)
	if err != nil {
		return fmt.Errorf("traced closure query %q: %w", closureGoal, err)
	}
	planned[warm.Plan]++
	if warm.Cached {
		return fmt.Errorf("closure query %q was already cached before the smoke warmed it", closureGoal)
	}
	if warm.RequestID == "" {
		return fmt.Errorf("traced query response carries no request_id")
	}
	if warm.Trace == nil || len(warm.Trace.Phases) == 0 {
		return fmt.Errorf("traced query returned no trace phases")
	}
	if warm.Trace.RequestID != warm.RequestID {
		return fmt.Errorf("trace request_id %q != response request_id %q", warm.Trace.RequestID, warm.RequestID)
	}
	for _, ph := range warm.Trace.Phases {
		sum := ph.BaseRows + ph.SeedRows
		for _, rd := range ph.Rounds {
			sum += rd.NewRows
		}
		if sum != ph.TotalRows {
			return fmt.Errorf("trace phase %q: base %d + seed %d + round deltas = %d, want total_rows %d",
				ph.Name, ph.BaseRows, ph.SeedRows, sum, ph.TotalRows)
		}
	}
	last := warm.Trace.Phases[len(warm.Trace.Phases)-1]
	if last.TotalRows != warm.RowCount {
		return fmt.Errorf("trace final phase holds %d rows, response has %d", last.TotalRows, warm.RowCount)
	}
	fmt.Printf("lrload: traced %q -> %d phases, %d rounds in the final phase, deltas sum to %d rows\n",
		closureGoal, len(warm.Trace.Phases), len(last.Rounds), last.TotalRows)

	stamp := time.Now().UnixNano()
	facts := fmt.Sprintf("edge(smoke_%d_a, smoke_%d_b).", stamp, stamp)
	fr, err := server.PostFacts(ctx, hc, base, facts)
	if err != nil {
		return fmt.Errorf("facts: %w", err)
	}
	if fr.SnapshotVersion <= before.SnapshotVersion {
		return fmt.Errorf("fact update did not advance the snapshot: %d -> %d",
			before.SnapshotVersion, fr.SnapshotVersion)
	}
	if fr.CacheUpgraded < 1 {
		return fmt.Errorf("additive swap upgraded %d cache entries, want ≥ 1 (the warmed full closure)", fr.CacheUpgraded)
	}
	fmt.Printf("lrload: fact swap -> snapshot %d (%d cache entries upgraded)\n",
		fr.SnapshotVersion, fr.CacheUpgraded)

	after, err := server.QueryOnce(ctx, hc, base, query, timeout, 0)
	if err != nil {
		return fmt.Errorf("re-query: %w", err)
	}
	planned[after.Plan]++
	if after.SnapshotVersion < fr.SnapshotVersion {
		return fmt.Errorf("re-query saw stale snapshot %d < %d", after.SnapshotVersion, fr.SnapshotVersion)
	}
	if after.RowCount < before.RowCount {
		return fmt.Errorf("rows shrank across an additive swap: %d -> %d", before.RowCount, after.RowCount)
	}

	// Retract the batch we just added: the full lifecycle, not just the
	// additive half.
	dr, err := server.DeleteFacts(ctx, hc, base, facts)
	if err != nil {
		return fmt.Errorf("retract: %w", err)
	}
	if dr.FactsRemoved != 1 {
		return fmt.Errorf("retraction removed %d facts, want 1", dr.FactsRemoved)
	}
	if dr.SnapshotVersion <= after.SnapshotVersion {
		return fmt.Errorf("retraction did not advance the snapshot: %d -> %d",
			after.SnapshotVersion, dr.SnapshotVersion)
	}
	fmt.Printf("lrload: retraction swap -> snapshot %d\n", dr.SnapshotVersion)

	final, err := server.QueryOnce(ctx, hc, base, query, timeout, 0)
	if err != nil {
		return fmt.Errorf("post-retract query: %w", err)
	}
	planned[final.Plan]++
	if final.SnapshotVersion < dr.SnapshotVersion {
		return fmt.Errorf("post-retract query saw stale snapshot %d < %d", final.SnapshotVersion, dr.SnapshotVersion)
	}
	if final.RowCount != before.RowCount {
		return fmt.Errorf("rows after add+retract = %d, want the original %d", final.RowCount, before.RowCount)
	}
	fmt.Printf("lrload: %q -> %d rows after retraction (cached=%v)\n", query, final.RowCount, final.Cached)

	closure, err := server.QueryOnce(ctx, hc, base, closureGoal, timeout, 0)
	if err != nil {
		return fmt.Errorf("post-retract closure query: %w", err)
	}
	planned[closure.Plan]++
	if closure.RowCount != warm.RowCount {
		return fmt.Errorf("closure rows after add+retract = %d, want the original %d", closure.RowCount, warm.RowCount)
	}
	if !closure.Cached {
		return fmt.Errorf("closure query after two maintained swaps was not a cache hit")
	}

	// A traced repeat of the now-cached closure goal must be served as a
	// hit — phases stay empty (nothing evaluated), but the trace still
	// records the cache decision.
	hitTrace, err := server.QueryTraced(ctx, hc, base, closureGoal, timeout, 0)
	if err != nil {
		return fmt.Errorf("traced cached closure query: %w", err)
	}
	planned[hitTrace.Plan]++
	if !hitTrace.Cached {
		return fmt.Errorf("traced repeat of %q after the swaps was not a cache hit", closureGoal)
	}
	if hitTrace.Trace == nil {
		return fmt.Errorf("traced cache hit returned no trace")
	}
	if len(hitTrace.Trace.Phases) != 0 {
		return fmt.Errorf("traced cache hit recorded %d evaluation phases, want 0", len(hitTrace.Trace.Phases))
	}

	// Streaming serving modes: an exists probe and a limit=10 query of
	// the closure goal.  Both ride the early-termination path, so the
	// limited/exists/early-termination counters must advance in
	// /v1/stats and /metrics by the end of the smoke.
	ex1, err := server.QueryExists(ctx, hc, base, closureGoal, timeout)
	if err != nil {
		return fmt.Errorf("exists query %q: %w", closureGoal, err)
	}
	planned[ex1.Plan]++
	if ex1.Exists == nil {
		return fmt.Errorf("exists query %q returned no verdict", closureGoal)
	}
	if want := closure.RowCount > 0; *ex1.Exists != want {
		return fmt.Errorf("exists(%q) = %v, but the closure has %d rows", closureGoal, *ex1.Exists, closure.RowCount)
	}
	if len(ex1.Rows) > 1 {
		return fmt.Errorf("exists query returned %d rows, want at most one witness", len(ex1.Rows))
	}
	fmt.Printf("lrload: exists %q -> %v (%d witness rows)\n", closureGoal, *ex1.Exists, len(ex1.Rows))

	lim, err := server.QueryLimited(ctx, hc, base, closureGoal, 10, timeout)
	if err != nil {
		return fmt.Errorf("limit=10 query %q: %w", closureGoal, err)
	}
	planned[lim.Plan]++
	wantRows := closure.RowCount
	if wantRows > 10 {
		wantRows = 10
	}
	if lim.RowCount != wantRows || len(lim.Rows) != wantRows {
		return fmt.Errorf("limit=10 query served %d rows (row_count %d), want %d", len(lim.Rows), lim.RowCount, wantRows)
	}
	if got, want := lim.Truncated, closure.RowCount > 10; got != want {
		return fmt.Errorf("limit=10 query truncated=%v over a %d-row answer, want %v", got, closure.RowCount, want)
	}
	// Limited rows are served in derivation order, but every one must be
	// a member of the full materialized answer.
	members := map[string]bool{}
	for _, row := range closure.Rows {
		members[fmt.Sprint(row)] = true
	}
	for _, row := range lim.Rows {
		if !members[fmt.Sprint(row)] {
			return fmt.Errorf("limit=10 query served row %v that is not in the full answer", row)
		}
	}
	fmt.Printf("lrload: limit=10 %q -> %d rows (truncated=%v), all members of the full answer\n",
		closureGoal, lim.RowCount, lim.Truncated)

	// Explain must describe the bound query's plan without executing it.
	boundGoal := query
	ex, err := server.ExplainQuery(ctx, hc, base, boundGoal)
	if err != nil {
		return fmt.Errorf("explain %q: %w", boundGoal, err)
	}
	if ex.Explain == nil || ex.Explain.PlanKind == "" || ex.Explain.Why == "" {
		return fmt.Errorf("explain %q returned no plan decision: %+v", boundGoal, ex.Explain)
	}
	if ex.RequestID == "" {
		return fmt.Errorf("explain response carries no request_id")
	}
	fmt.Printf("lrload: explain %q -> %s (adornment %s): %s\n",
		boundGoal, ex.Explain.PlanKind, ex.Explain.Adornment, ex.Explain.Why)

	st, err := server.FetchStats(ctx, hc, base)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	fmt.Printf("lrload: server result cache: %.1f%% hit ratio (%d entries)\n",
		100*st.ResultCache.HitRatio(), st.ResultCache.Entries)
	if st.Internal500s > 0 {
		return fmt.Errorf("server answered %d request(s) with 500 during the smoke", st.Internal500s)
	}
	// The per-plan-kind counters must have accounted for every plan the
	// smoke's successful queries reported — otherwise a stats-accounting
	// regression passes smoke silently.
	for plan, n := range planned {
		if got := st.Plans[plan] - st0.Plans[plan]; got < n {
			return fmt.Errorf("plan counter %q advanced by %d, want ≥ %d (the smoke's own queries)", plan, got, n)
		}
	}
	if len(st.PlansByAdornment) == 0 {
		return fmt.Errorf("stats report no per-adornment plan counts after %d smoke queries", len(planned))
	}
	// Both swaps crossed a warm full-closure entry: each must have
	// upgraded it in place rather than invalidated it.
	if got := st.ResultCache.Upgrades - st0.ResultCache.Upgrades; got < 2 {
		return fmt.Errorf("result_cache.upgrades advanced by %d across the smoke's add and retract, want ≥ 2", got)
	}
	fmt.Printf("lrload: %d cache upgrades across the smoke's swaps (%d fallbacks total)\n",
		st.ResultCache.Upgrades-st0.ResultCache.Upgrades, st.ResultCache.UpgradeFallbacks)
	// The smoke issued one exists probe and one limit=10 query (exists
	// counts as both: it is served as limit=1), and the exists probe over
	// a multi-row answer must have stopped evaluation early.
	if got := st.LimitedQueries - st0.LimitedQueries; got < 2 {
		return fmt.Errorf("limited_queries advanced by %d across the smoke, want ≥ 2", got)
	}
	if got := st.ExistsQueries - st0.ExistsQueries; got < 1 {
		return fmt.Errorf("exists_queries advanced by %d across the smoke, want ≥ 1", got)
	}
	if closure.RowCount > 1 {
		if got := st.EarlyTerminations - st0.EarlyTerminations; got < 1 {
			return fmt.Errorf("early_terminations advanced by %d across the smoke, want ≥ 1 (the exists probe over a %d-row answer)",
				got, closure.RowCount)
		}
	}
	fmt.Printf("lrload: early-termination counters verified: +%d limited, +%d exists, +%d early terminations\n",
		st.LimitedQueries-st0.LimitedQueries, st.ExistsQueries-st0.ExistsQueries,
		st.EarlyTerminations-st0.EarlyTerminations)
	fmt.Printf("lrload: plan counters verified for %d plan kind(s), %d adornment bucket(s)\n",
		len(planned), len(st.PlansByAdornment))

	// Final metrics scrape: the body must still parse strictly, and the
	// counters must have advanced by everything the smoke itself did.
	m1, err := server.FetchMetrics(ctx, hc, base)
	if err != nil {
		return fmt.Errorf("final metrics scrape: %w", err)
	}
	okSeries := `linrec_queries_total{status="ok"}`
	if m1[okSeries]-m0[okSeries] < float64(len(planned)) {
		return fmt.Errorf("%s advanced by %g across the smoke, want ≥ %d",
			okSeries, m1[okSeries]-m0[okSeries], len(planned))
	}
	if m1["linrec_query_latency_seconds_count"] <= m0["linrec_query_latency_seconds_count"] {
		return fmt.Errorf("linrec_query_latency_seconds_count did not advance across the smoke")
	}
	if got, want := m1["linrec_snapshot_version"], float64(st.SnapshotVersion); got != want {
		return fmt.Errorf("linrec_snapshot_version = %g, /v1/stats says %g", got, want)
	}
	for series, min := range map[string]float64{
		"linrec_limited_queries_total": 2,
		"linrec_exists_queries_total":  1,
	} {
		if got := m1[series] - m0[series]; got < min {
			return fmt.Errorf("%s advanced by %g across the smoke, want ≥ %g", series, got, min)
		}
	}
	if closure.RowCount > 1 && m1["linrec_early_terminations_total"]-m0["linrec_early_terminations_total"] < 1 {
		return fmt.Errorf("linrec_early_terminations_total did not advance across the smoke's exists probe")
	}
	fmt.Printf("lrload: metrics verified: %d series parsed, queries_total{ok} +%g\n",
		len(m1), m1[okSeries]-m0[okSeries])
	return nil
}
