package linrec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"linrec/internal/planner"
)

// genProgram builds a random two-rule commuting program (left-linear +
// right-linear over separate edge relations) with random facts, plus a
// selection query on a random constant.
func genProgram(rng *rand.Rand) (src string, nodes int) {
	nodes = 8 + rng.Intn(8)
	var b strings.Builder
	b.WriteString("p(X,Y) :- base(X,Y).\n")
	b.WriteString("p(X,Y) :- p(X,Z), fwd(Z,Y).\n")
	b.WriteString("p(X,Y) :- bwd(X,Z), p(Z,Y).\n")
	edge := func(pred string, m int) {
		for i := 0; i < m; i++ {
			fmt.Fprintf(&b, "%s(n%d,n%d).\n", pred, rng.Intn(nodes), rng.Intn(nodes))
		}
	}
	edge("base", 4)
	edge("fwd", nodes)
	edge("bwd", nodes)
	return b.String(), nodes
}

// TestEndToEndPlansAgreeOnRandomPrograms: for random programs, the open
// query (decomposed plan), the selection query (separable plan) and the
// ground query (n-ary plan) are all consistent with the flat semi-naive
// closure.
func TestEndToEndPlansAgreeOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		src, nodes := genProgram(rng)
		sys, err := Load(src)
		if err != nil {
			t.Fatalf("trial %d: Load: %v", trial, err)
		}
		a, err := sys.Analyze("p")
		if err != nil {
			t.Fatalf("trial %d: Analyze: %v", trial, err)
		}

		// Ground truth: flat semi-naive.
		flat, err := a.Execute(sys.Engine, sys.DB(), &planner.Plan{Kind: planner.SemiNaive}, nil)
		if err != nil {
			t.Fatalf("trial %d: flat: %v", trial, err)
		}

		// Open query uses the decomposed plan.
		open, err := sys.Query(Atom{Pred: "p", Args: []Term{V("X"), V("Y")}})
		if err != nil {
			t.Fatalf("trial %d: open query: %v", trial, err)
		}
		if !open.Answer.Equal(flat.Answer) {
			t.Fatalf("trial %d: decomposed != flat (%d vs %d)", trial, open.Answer.Len(), flat.Answer.Len())
		}

		// Selection query per random constant.
		c := fmt.Sprintf("n%d", rng.Intn(nodes))
		sel, err := sys.Query(Atom{Pred: "p", Args: []Term{C(c), V("Y")}})
		if err != nil {
			t.Fatalf("trial %d: selection query: %v", trial, err)
		}
		cv, ok := sys.Engine.Syms.Lookup(c)
		if !ok {
			if sel.Answer.Len() != 0 {
				t.Fatalf("trial %d: unknown constant with answers", trial)
			}
			continue
		}
		want := flat.Answer.Select(0, cv)
		if !sel.Answer.Equal(want) {
			t.Fatalf("trial %d: separable plan wrong (%d vs %d rows)", trial, sel.Answer.Len(), want.Len())
		}

		// Ground query = membership.
		rows := want.Tuples()
		if len(rows) > 0 {
			d := sys.Engine.Syms.Name(rows[0][1])
			ground, err := sys.Query(Atom{Pred: "p", Args: []Term{C(c), C(d)}})
			if err != nil {
				t.Fatalf("trial %d: ground query: %v", trial, err)
			}
			if ground.Answer.Len() != 1 {
				t.Fatalf("trial %d: ground query = %d rows, want 1", trial, ground.Answer.Len())
			}
		}
	}
}
