package linrec

// One benchmark per evaluation artifact of the paper.  Each benchmark wraps
// the corresponding experiment in internal/experiments, so `go test
// -bench=.` regenerates the paper's comparisons under the Go benchmark
// harness while `cmd/lrbench` prints them as tables.

import (
	"fmt"
	"testing"

	"linrec/internal/experiments"
)

// BenchmarkF3_TransitiveClosure: the Figure 3 / Example 5.2 workload —
// monolithic (B+C)* vs decomposed B*C* on a chain; reported per size.
func BenchmarkF3_TransitiveClosure(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("monolithic/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.T31Run("chain", n, 11)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.MonoDups), "dups")
			}
		})
		b.Run(fmt.Sprintf("decomposed/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.T31Run("chain", n, 11)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.DecDups), "dups")
			}
		})
	}
}

// BenchmarkT31_Duplicates: Theorem 3.1's duplicate accounting across graph
// shapes.
func BenchmarkT31_Duplicates(b *testing.B) {
	for _, kind := range []string{"chain", "cycle", "random", "dag"} {
		b.Run(kind, func(b *testing.B) {
			var mono, dec int64
			for i := 0; i < b.N; i++ {
				r, err := experiments.T31Run(kind, 96, 11)
				if err != nil {
					b.Fatal(err)
				}
				mono, dec = r.MonoDups, r.DecDups
			}
			b.ReportMetric(float64(mono), "mono-dups")
			b.ReportMetric(float64(dec), "dec-dups")
		})
	}
}

// BenchmarkA41_Separable: Algorithm 4.1 vs full-closure baseline for a
// selection query (Theorem 4.1).
func BenchmarkA41_Separable(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var base, sep int64
			for i := 0; i < b.N; i++ {
				r, err := experiments.A41Run(n, 23)
				if err != nil {
					b.Fatal(err)
				}
				if !r.ResultsAgree {
					b.Fatal("results diverged")
				}
				base, sep = r.BaseDerivs, r.SepDerivs
			}
			b.ReportMetric(float64(base), "base-derivs")
			b.ReportMetric(float64(sep), "sep-derivs")
		})
	}
}

// BenchmarkT53_TestScaling: the O(a log a) syntactic commutativity test vs
// the definition-based test as rules grow (Theorem 5.3).
func BenchmarkT53_TestScaling(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("syntactic/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.T53RunSyntacticOnly(k); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("definition/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.T53RunDefinitionOnly(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkT42_Redundancy: full closure vs the Theorem 4.2 schedule vs the
// commuting schedule on Example 6.1's rule.
func BenchmarkT42_Redundancy(b *testing.B) {
	for _, pct := range []int{100, 50} {
		b.Run(fmt.Sprintf("cheap=%d%%", pct), func(b *testing.B) {
			var full, t42, com int64
			for i := 0; i < b.N; i++ {
				r, err := experiments.T42Run(128, pct, 31)
				if err != nil {
					b.Fatal(err)
				}
				if !r.Agree {
					b.Fatal("results diverged")
				}
				full, t42, com = r.FullDerivs, r.OptDerivs, r.ComDerivs
			}
			b.ReportMetric(float64(full), "full-derivs")
			b.ReportMetric(float64(t42), "t42-derivs")
			b.ReportMetric(float64(com), "com-derivs")
		})
	}
}

// BenchmarkPTC_Substrate: the seed string-keyed substrate vs the packed-key
// parallel engine on transitive closure (the -json artifact runs the full
// 240k-edge version; this keeps the smoke lane fast).
func BenchmarkPTC_Substrate(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.PTCRun(experiments.PTCTableNodes, workers)
				if err != nil {
					b.Fatal(err)
				}
				speedup = r.Speedup
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkEndToEndQuery: the public API answering a selection query on a
// generated program (quickstart shape at size).
func BenchmarkEndToEndQuery(b *testing.B) {
	var src string
	{
		s := "path(X,Y) :- up(X,Y).\n" +
			"path(X,Y) :- path(X,Z), up(Z,Y).\n" +
			"path(X,Y) :- down(X,Z), path(Z,Y).\n"
		for i := 0; i < 200; i++ {
			s += fmt.Sprintf("up(n%d,n%d).\n", i, i+1)
			s += fmt.Sprintf("down(n%d,n%d).\n", i+1, i)
		}
		s += "?- path(n0, Y).\n"
		src = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := Load(src)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		if rs[0].Answer.Len() == 0 {
			b.Fatal("empty answer")
		}
	}
}
