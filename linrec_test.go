package linrec

import (
	"testing"
)

// TestPublicAPIQuickstart exercises the README's quick-start path through
// the re-exported facade.
func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := Load(`
path(X,Y) :- edge(X,Y).
path(X,Y) :- path(X,Z), edge(Z,Y).
edge(a,b). edge(b,c).
?- path(a, Y).
`)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	results, err := sys.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	rows := results[0].Rows(sys)
	if len(rows) != 2 {
		t.Fatalf("path(a, Y) = %v, want 2 rows", rows)
	}
}

// TestPublicAPIAnalysis: the analysis types round-trip through the facade.
func TestPublicAPIAnalysis(t *testing.T) {
	sys, err := Load(`
p(X,Y) :- base(X,Y).
p(X,Y) :- p(X,Z), up(Z,Y).
p(X,Y) :- down(X,Z), p(Z,Y).
base(a,b).
`)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a, err := sys.Analyze("p")
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := a.Commutes[[2]int{0, 1}]; v != Commute {
		t.Fatalf("verdict = %v, want Commute", v)
	}
	var _ CommuteVerdict = v(a)
}

func v(a *Analysis) CommuteVerdict { return a.Commutes[[2]int{0, 1}] }
