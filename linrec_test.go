package linrec

import (
	"context"
	"reflect"
	"testing"
)

// TestPublicAPIQuickstart exercises the README's quick-start path through
// the re-exported facade.
func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := Load(`
path(X,Y) :- edge(X,Y).
path(X,Y) :- path(X,Z), edge(Z,Y).
edge(a,b). edge(b,c).
?- path(a, Y).
`)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	results, err := sys.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	rows := results[0].Rows(sys)
	if len(rows) != 2 {
		t.Fatalf("path(a, Y) = %v, want 2 rows", rows)
	}
}

// TestPublicAPIAnalysis: the analysis types round-trip through the facade.
func TestPublicAPIAnalysis(t *testing.T) {
	sys, err := Load(`
p(X,Y) :- base(X,Y).
p(X,Y) :- p(X,Z), up(Z,Y).
p(X,Y) :- down(X,Z), p(Z,Y).
base(a,b).
`)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a, err := sys.Analyze("p")
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := a.Commutes[[2]int{0, 1}]; v != Commute {
		t.Fatalf("verdict = %v, want Commute", v)
	}
	var _ CommuteVerdict = v(a)
}

func v(a *Analysis) CommuteVerdict { return a.Commutes[[2]int{0, 1}] }

// TestPublicAPIQueryRequest: the redesigned query entry points —
// Evaluate and Stream over a QueryRequest — work through the facade.
func TestPublicAPIQueryRequest(t *testing.T) {
	sys, err := Load(`
path(X,Y) :- edge(X,Y).
path(X,Y) :- path(X,Z), edge(Z,Y).
edge(a,b). edge(b,c). edge(c,d).
`)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ctx := context.Background()
	goal := NewAtom("path", C("a"), V("Y"))
	res, err := sys.Evaluate(ctx, NewQueryRequest(goal, WithWorkers(2)))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(res.Rows(sys)) != 3 {
		t.Fatalf("path(a, Y) = %v, want 3 rows", res.Rows(sys))
	}
	st, err := sys.Stream(ctx, NewQueryRequest(goal, WithLimit(1)))
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	defer st.Close()
	if _, ok := st.Next(); !ok {
		t.Fatalf("limited stream yielded no row: %v", st.Err())
	}
}

// TestPublicAPIPersistence: snapshots published through OpenStorage
// survive a reconstruction, and the recovered system answers
// identically.
func TestPublicAPIPersistence(t *testing.T) {
	const src = `
path(X,Y) :- edge(X,Y).
path(X,Y) :- path(X,Z), edge(Z,Y).
edge(a,b). edge(b,c).
`
	dir := t.TempDir()
	store, err := OpenStorage(dir)
	if err != nil {
		t.Fatalf("OpenStorage: %v", err)
	}
	sys, err := LoadOptions(src, Options{Persist: store})
	if err != nil {
		t.Fatalf("LoadOptions: %v", err)
	}
	if _, _, err := sys.AddFacts([]Atom{NewAtom("edge", C("c"), C("d"))}); err != nil {
		t.Fatalf("AddFacts: %v", err)
	}
	goal := NewAtom("path", C("a"), V("Y"))
	want, err := sys.Evaluate(context.Background(), NewQueryRequest(goal))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}

	store2, err := OpenStorage(dir)
	if err != nil {
		t.Fatalf("OpenStorage (reopen): %v", err)
	}
	var _ Persister = store2
	recovered, err := LoadOptions(src, Options{Persist: store2})
	if err != nil {
		t.Fatalf("LoadOptions (recovered): %v", err)
	}
	if recovered.Snapshot().Version != sys.Snapshot().Version {
		t.Fatalf("recovered version %d, want %d", recovered.Snapshot().Version, sys.Snapshot().Version)
	}
	var _ Store = recovered.Snapshot().DB["edge"]
	got, err := recovered.Evaluate(context.Background(), NewQueryRequest(goal))
	if err != nil {
		t.Fatalf("Evaluate (recovered): %v", err)
	}
	if !reflect.DeepEqual(got.Rows(recovered), want.Rows(sys)) {
		t.Fatalf("recovered answers diverge:\ngot  %v\nwant %v", got.Rows(recovered), want.Rows(sys))
	}
}
