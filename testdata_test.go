package linrec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"linrec/internal/planner"
)

// loadTestdata reads and loads one shipped sample program.
func loadTestdata(t *testing.T, name string) *System {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	sys, err := Load(string(src))
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return sys
}

// TestTestdataPrograms answers every query of every shipped program and
// checks expected row counts and plan kinds.
func TestTestdataPrograms(t *testing.T) {
	cases := []struct {
		file      string
		pred      string
		wantPlans []planner.Kind // per query, in order
		wantRows  []int
	}{
		{
			file: "tc.dl", pred: "path",
			// path(a,Y): selection col 0 → separable; path(X,e): selection
			// col 1 → separable with flipped roles; ground query.
			wantPlans: []planner.Kind{planner.Separable, planner.Separable, planner.Separable},
			// chain a..e: from a everything later: b,c,d,e = 4 rows;
			// into e from a,b,c,d plus e itself via down(e,d),up(d,e) = 5;
			// path(b,d) = 1 row.
			wantRows: []int{4, 5, 1},
		},
		{
			file: "marketbasket.dl", pred: "buys",
			// single recursive rule: no pairwise decomposition and no
			// separable partner, but both bound queries magic-seed — the
			// closure is restricted to bindings reachable from the
			// constant instead of closing all of buys and filtering.
			wantPlans: []planner.Kind{planner.MagicSeeded, planner.MagicSeeded},
			// bob buys: trusts nothing directly; via cho: figs (cheap);
			// via dee: salt is not cheap; via ann: tea (cheap) = 2 rows.
			// buys(X,tea): ann (trusts), dee→ann, cho→dee, bob→cho = 4.
			wantRows: []int{2, 4},
		},
		{
			file: "partial.dl", pred: "p",
			wantPlans: []planner.Kind{planner.Decomposed},
			wantRows:  []int{-1}, // count asserted against flat plan below
		},
		{
			file: "samegen.dl", pred: "sg",
			// bound same-generation query: magic-seeded restricted closure.
			wantPlans: []planner.Kind{planner.MagicSeeded},
			// dee's generation: dee, eli (siblings), fay, gus (cousins).
			wantRows: []int{4},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			sys := loadTestdata(t, tc.file)
			results, err := sys.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(results) != len(tc.wantPlans) {
				t.Fatalf("results = %d, want %d", len(results), len(tc.wantPlans))
			}
			for i, r := range results {
				if r.Plan.Kind != tc.wantPlans[i] {
					t.Errorf("query %d plan = %v (%s), want %v", i+1, r.Plan.Kind, r.Plan.Why, tc.wantPlans[i])
				}
				if tc.wantRows[i] >= 0 && r.Answer.Len() != tc.wantRows[i] {
					t.Errorf("query %d rows = %d, want %d: %v", i+1, r.Answer.Len(), tc.wantRows[i], r.Rows(sys))
				}
			}
		})
	}
}

// TestPartialProgramPlansAgree: the grouped plan on partial.dl returns the
// same relation as the flat fallback.
func TestPartialProgramPlansAgree(t *testing.T) {
	sys := loadTestdata(t, "partial.dl")
	a, err := sys.Analyze("p")
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	grouped := a.Choose(nil)
	if grouped.Kind != planner.Decomposed || len(grouped.Groups) != 2 {
		t.Fatalf("plan = %+v, want 2-group decomposition (%s)", grouped, grouped.Why)
	}
	g, err := a.Execute(sys.Engine, sys.DB(), grouped, nil)
	if err != nil {
		t.Fatalf("Execute grouped: %v", err)
	}
	f, err := a.Execute(sys.Engine, sys.DB(), &planner.Plan{Kind: planner.SemiNaive}, nil)
	if err != nil {
		t.Fatalf("Execute flat: %v", err)
	}
	if !g.Answer.Equal(f.Answer) {
		t.Fatalf("plans disagree: %d vs %d", g.Answer.Len(), f.Answer.Len())
	}
	if f.Answer.Len() == 0 {
		t.Fatalf("empty answer")
	}
}

// TestMarketbasketRedundancyVisible: the analysis of the shipped program
// reports cheap as recursively redundant.
func TestMarketbasketRedundancyVisible(t *testing.T) {
	sys := loadTestdata(t, "marketbasket.dl")
	rep, err := sys.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if !strings.Contains(rep, "recursively redundant: cheap") {
		t.Fatalf("report missing redundancy:\n%s", rep)
	}
}
