// Package linrec is a reproduction, as a reusable Go library, of
//
//	Yannis E. Ioannidis, "Commutativity and its Role in the Processing of
//	Linear Recursion" (VLDB 1989; extended version in J. Logic
//	Programming 14:223–252, 1992).
//
// It implements the paper's algebraic model of linear recursion, the
// a-graph machinery and syntactic commutativity tests of Section 5
// (Theorems 5.1–5.3), the separable algorithm and its widening to
// commutative rules (Theorem 4.1), recursive-redundancy detection and
// elimination (Theorems 4.2, 6.3, 6.4), and a bottom-up Datalog engine
// with plan selection that exploits all of the above.
//
// Quick start:
//
//	sys, err := linrec.Load(`
//	    path(X,Y) :- edge(X,Y).
//	    path(X,Y) :- path(X,Z), edge(Z,Y).
//	    edge(a,b). edge(b,c).
//	    ?- path(a, Y).
//	`)
//	results, err := sys.Run()
//
// The deeper machinery (operator algebra, a-graphs, commutativity reports,
// redundancy decompositions) is exposed through System.Analyze and the
// re-exported report types below.
package linrec

import (
	"linrec/internal/ast"
	"linrec/internal/commute"
	"linrec/internal/core"
	"linrec/internal/planner"
	"linrec/internal/rel"
	"linrec/internal/segment"
	"linrec/internal/separable"
)

// System is a loaded Datalog program with its database and analyses.
type System = core.System

// Options configure evaluation: Workers sizes the parallel closure pool
// (0/1 sequential, negative = GOMAXPROCS), Strategy can force a plan,
// ResultCacheRows sizes the goal-level result cache (0 default, negative
// disables), and Persist plugs in durable snapshot storage (see
// OpenStorage).
type Options = core.Options

// Strategy forces an evaluation strategy; see the planner constants below.
type Strategy = planner.Strategy

// Re-exported strategies.
const (
	Auto            = planner.Auto
	ForceSemiNaive  = planner.ForceSemiNaive
	ForceDecomposed = planner.ForceDecomposed
)

// QueryResult is an answered query with its plan and statistics.
type QueryResult = core.QueryResult

// QueryRequest bundles a query goal with its evaluation knobs — the
// single argument of System.Evaluate and System.Stream.  The zero value
// of every field is the sensible default; build one literally or with
// NewQueryRequest.
type QueryRequest = core.QueryRequest

// QueryOption customizes a QueryRequest built by NewQueryRequest.
type QueryOption = core.QueryOption

// NewQueryRequest builds a request for goal with the given options.
func NewQueryRequest(goal Atom, opts ...QueryOption) QueryRequest {
	return core.NewQueryRequest(goal, opts...)
}

// WithSnapshot pins the request to an explicit snapshot.
func WithSnapshot(snap *Snapshot) QueryOption { return core.WithSnapshot(snap) }

// WithOptions replaces the request's evaluation options wholesale.
func WithOptions(opts Options) QueryOption { return core.WithOptions(opts) }

// WithWorkers sets the closure worker pool size for this query.
func WithWorkers(n int) QueryOption { return core.WithWorkers(n) }

// WithStrategy forces an evaluation strategy instead of the
// analysis-driven choice.
func WithStrategy(strategy Strategy) QueryOption { return core.WithStrategy(strategy) }

// WithLimit bounds a streamed evaluation to n rows (0 = unbounded).
func WithLimit(n int) QueryOption { return core.WithLimit(n) }

// Snapshot is an immutable, versioned view of the extensional database.
// System.AddFacts and System.RemoveFacts publish new snapshots
// copy-on-write while in-flight queries keep the one they pinned — the
// substrate behind the linrecd server's online fact updates and
// retractions, and the version key behind every evaluation cache.
type Snapshot = core.Snapshot

// Store is the relation storage interface: in-memory columnar tables
// and lazily-loaded on-disk segments implement it identically, so every
// snapshot — and every query plan — runs against either backend.
type Store = rel.Store

// Persister is the pluggable durability seam: when set in
// Options.Persist, NewSystem boots from the last persisted snapshot
// (when one exists) and every snapshot swap is persisted before it
// becomes visible.  Storage, returned by OpenStorage, is the on-disk
// segment implementation.
type Persister = core.Persister

// Storage is the on-disk segment store behind OpenStorage: immutable
// columnar segment files addressed by a versioned manifest, published
// with fsync'd atomic renames and recovered in time proportional to
// segment metadata.  It satisfies Persister.
type Storage = segment.Manager

// OpenStorage opens (or initializes) a durable storage directory.  Wire
// the result into Options.Persist to make a system's snapshots survive
// restarts:
//
//	store, err := linrec.OpenStorage("/var/lib/myapp")
//	sys, err := linrec.LoadOptions(src, linrec.Options{Persist: store})
func OpenStorage(dir string) (*Storage, error) { return segment.Open(dir) }

// ResultCacheStats reports the goal-level result cache's hit/miss/
// eviction counters (System.ResultCacheStats, the server's /v1/stats
// "result_cache" section).
type ResultCacheStats = core.ResultCacheStats

// Analysis is the paper's full symbolic analysis of one recursive
// predicate.
type Analysis = planner.Analysis

// Plan is a selected evaluation strategy.
type Plan = planner.Plan

// CommuteVerdict is the outcome of a commutativity test.
type CommuteVerdict = commute.Verdict

// Re-exported verdicts.
const (
	Commute    = commute.Commute
	NotCommute = commute.NotCommute
	Unknown    = commute.Unknown
)

// Selection is a single-column equality selection on a query answer.
type Selection = separable.Selection

// Atom, Rule, Program and Term are the syntax-tree types used by queries
// and programmatic construction.
type (
	Atom    = ast.Atom
	Rule    = ast.Rule
	Program = ast.Program
	Term    = ast.Term
)

// V builds a variable term; C builds a constant term.
func V(name string) Term { return ast.V(name) }

// C builds a constant term.
func C(name string) Term { return ast.C(name) }

// NewAtom builds a query or fact atom from terms, e.g.
// NewAtom("path", C("a"), V("Y")) for the bound goal path(a, Y).
func NewAtom(pred string, args ...Term) Atom { return ast.NewAtom(pred, args...) }

// Load parses a Datalog program (rules, facts, queries) and loads its
// facts into a fresh system.
func Load(src string) (*System, error) { return core.Load(src) }

// LoadOptions is Load with evaluation options (worker pool, forced
// strategy).
func LoadOptions(src string, opts Options) (*System, error) { return core.LoadOptions(src, opts) }

// FromProgram wraps an already-constructed program.
func FromProgram(p *Program) (*System, error) { return core.FromProgram(p) }

// FromProgramOptions is FromProgram with evaluation options.
func FromProgramOptions(p *Program, opts Options) (*System, error) {
	return core.FromProgramOptions(p, opts)
}

// NewSystem is the canonical constructor: it builds a system from an
// already-parsed program and options, booting from Options.Persist when
// it holds a persisted snapshot.  Load, LoadOptions, FromProgram and
// FromProgramOptions all funnel here.
func NewSystem(p *Program, opts Options) (*System, error) {
	return core.NewSystem(p, opts)
}
