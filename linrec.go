// Package linrec is a reproduction, as a reusable Go library, of
//
//	Yannis E. Ioannidis, "Commutativity and its Role in the Processing of
//	Linear Recursion" (VLDB 1989; extended version in J. Logic
//	Programming 14:223–252, 1992).
//
// It implements the paper's algebraic model of linear recursion, the
// a-graph machinery and syntactic commutativity tests of Section 5
// (Theorems 5.1–5.3), the separable algorithm and its widening to
// commutative rules (Theorem 4.1), recursive-redundancy detection and
// elimination (Theorems 4.2, 6.3, 6.4), and a bottom-up Datalog engine
// with plan selection that exploits all of the above.
//
// Quick start:
//
//	sys, err := linrec.Load(`
//	    path(X,Y) :- edge(X,Y).
//	    path(X,Y) :- path(X,Z), edge(Z,Y).
//	    edge(a,b). edge(b,c).
//	    ?- path(a, Y).
//	`)
//	results, err := sys.Run()
//
// The deeper machinery (operator algebra, a-graphs, commutativity reports,
// redundancy decompositions) is exposed through System.Analyze and the
// re-exported report types below.
package linrec

import (
	"linrec/internal/ast"
	"linrec/internal/commute"
	"linrec/internal/core"
	"linrec/internal/planner"
	"linrec/internal/separable"
)

// System is a loaded Datalog program with its database and analyses.
type System = core.System

// Options configure evaluation: Workers sizes the parallel closure pool
// (0/1 sequential, negative = GOMAXPROCS), Strategy can force a plan,
// ResultCacheRows sizes the goal-level result cache (0 default, negative
// disables).
type Options = core.Options

// Strategy forces an evaluation strategy; see the planner constants below.
type Strategy = planner.Strategy

// Re-exported strategies.
const (
	Auto            = planner.Auto
	ForceSemiNaive  = planner.ForceSemiNaive
	ForceDecomposed = planner.ForceDecomposed
)

// QueryResult is an answered query with its plan and statistics.
type QueryResult = core.QueryResult

// Snapshot is an immutable, versioned view of the extensional database.
// System.AddFacts and System.RemoveFacts publish new snapshots
// copy-on-write while in-flight queries keep the one they pinned — the
// substrate behind the linrecd server's online fact updates and
// retractions, and the version key behind every evaluation cache.
type Snapshot = core.Snapshot

// ResultCacheStats reports the goal-level result cache's hit/miss/
// eviction counters (System.ResultCacheStats, the server's /v1/stats
// "result_cache" section).
type ResultCacheStats = core.ResultCacheStats

// Analysis is the paper's full symbolic analysis of one recursive
// predicate.
type Analysis = planner.Analysis

// Plan is a selected evaluation strategy.
type Plan = planner.Plan

// CommuteVerdict is the outcome of a commutativity test.
type CommuteVerdict = commute.Verdict

// Re-exported verdicts.
const (
	Commute    = commute.Commute
	NotCommute = commute.NotCommute
	Unknown    = commute.Unknown
)

// Selection is a single-column equality selection on a query answer.
type Selection = separable.Selection

// Atom, Rule, Program and Term are the syntax-tree types used by queries
// and programmatic construction.
type (
	Atom    = ast.Atom
	Rule    = ast.Rule
	Program = ast.Program
	Term    = ast.Term
)

// V builds a variable term; C builds a constant term.
func V(name string) Term { return ast.V(name) }

// C builds a constant term.
func C(name string) Term { return ast.C(name) }

// NewAtom builds a query or fact atom from terms, e.g.
// NewAtom("path", C("a"), V("Y")) for the bound goal path(a, Y).
func NewAtom(pred string, args ...Term) Atom { return ast.NewAtom(pred, args...) }

// Load parses a Datalog program (rules, facts, queries) and loads its
// facts into a fresh system.
func Load(src string) (*System, error) { return core.Load(src) }

// LoadOptions is Load with evaluation options (worker pool, forced
// strategy).
func LoadOptions(src string, opts Options) (*System, error) { return core.LoadOptions(src, opts) }

// FromProgram wraps an already-constructed program.
func FromProgram(p *Program) (*System, error) { return core.FromProgram(p) }

// FromProgramOptions is FromProgram with evaluation options.
func FromProgramOptions(p *Program, opts Options) (*System, error) {
	return core.FromProgramOptions(p, opts)
}
